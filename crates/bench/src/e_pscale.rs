//! e12_pscale — the e10 macro-workload on the conservative parallel
//! executor (`dash::par`).
//!
//! The same internetwork-of-LANs scenario as `e_scale`, rebuilt on the
//! logical-process model: every host is an LP (a full replica world whose
//! protocol state only populates for its owner), hosts are grouped onto
//! worker threads by a [`dash_par::ShardPlan`], and every inter-host
//! interaction rides a timestamped wire envelope exchanged at epoch
//! barriers. The run at `P` shards merges — by `(time, host, emission
//! index)` — to byte-identical traces, metric registries, and scalar
//! outcomes as the run at 1 shard; [`PscaleOutcome::determinism_digest`]
//! is the enforced equality.
//!
//! Three sizes serve three masters, mirroring e10:
//! - [`PscaleParams::bench`] — the `BENCH_pscale.json` size, driven by
//!   the `e12_pscale` binary at 1/2/4/8 shards with measured speedup;
//! - [`PscaleParams::ci`] — trace-recording size for the golden
//!   determinism tests (`tests/determinism.rs`);
//! - [`PscaleParams::micro`] — a seconds-scale hashed-placement size
//!   (hashed placement splits LANs across shards, shrinking the epoch to
//!   the LAN wire delay — correct but thousands of barriers, so the
//!   workload must be tiny).
//!
//! Note the reference point: the serial baseline here is the *same LP
//! machinery at one shard*, not the legacy single-world engine of e10.
//! The single-world engine interleaves all hosts through one RNG, one id
//! well, and one event heap, so its byte-level schedule is a different
//! (equally valid) sample of the same model; the parallel contract is
//! partition-independence, enforced from `ShardPlan` up.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use bytes::Bytes;
use dash_net::fault::schedule_fault_plan;
use dash_net::ids::{HostId, NetworkId};
use dash_net::shard::WireEnvelope;
use dash_net::state::NetState;
use dash_net::topology::TopologyBuilder;
use dash_net::NetworkSpec;
use dash_par::{
    cross_shard_lookahead, local_lookahead, merge_traces, run_sharded, Lp, ParConfig, ShardPlan,
    StackLp,
};
use dash_sim::cpu::SchedPolicy;
use dash_sim::fault::{FaultKind, FaultPlan};
use dash_sim::obs::{MetricRegistry, ObsEvent, ObsSink};
use dash_sim::rng::Rng;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_transport::rkom;
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::{self, StreamEvent, StreamProfile};
use rms_core::delay::DelayBound;
use rms_core::message::Message;
use rms_core::wire::WireMsg;

use crate::table::Table;

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

/// Knobs for one parallel-scale run. Everything except `wall_secs` (and
/// the speedup derived from it) is a deterministic function of these.
#[derive(Debug, Clone)]
pub struct PscaleParams {
    /// Edge LANs hanging off the WAN backbone.
    pub lans: usize,
    /// Hosts per LAN (the LAN's gateway is extra). Must be at least 2.
    pub hosts_per_lan: usize,
    /// Every k-th LAN is a 100 Mb/s fast LAN instead of 10 Mb/s Ethernet.
    pub fast_every: usize,
    /// Long-lived voice sessions originating per LAN.
    pub voice_per_lan: usize,
    /// Bulk transfers per LAN.
    pub bulk_per_lan: usize,
    /// RPC client/server pairs per LAN (cross-LAN over the WAN).
    pub rpc_per_lan: usize,
    /// Fraction of voice sessions that cross the WAN.
    pub cross_fraction: f64,
    /// Short-lived sessions opened per churn wave (RMS cache churn).
    pub churn_per_wave: usize,
    /// Interval between churn waves.
    pub churn_interval: SimDuration,
    /// Total payload bytes per bulk transfer (4 KiB chunks).
    pub bulk_bytes: u64,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// Drain grace after `duration` (the horizon is their sum).
    pub grace: SimDuration,
    /// Seed for placement and source randomness.
    pub seed: u64,
    /// Run the mid-run fault drill (see [`PscaleParams::wan_outage`]).
    pub fault_drill: bool,
    /// Drill variant: take the WAN backbone down instead of one LAN +
    /// one host. With [`PscaleParams::backup_wan`] this exercises the
    /// routing subsystem's alternate-path failover across shard
    /// boundaries (the e11-flavored golden).
    pub wan_outage: bool,
    /// Add a second long-haul network bridging LAN 0 to the WAN, so a
    /// WAN outage has an alternate path to fail over to.
    pub backup_wan: bool,
    /// Model per-host protocol CPUs with EDF scheduling.
    pub cpus: bool,
    /// Record the per-LP observability trace (determinism runs; costly).
    pub record_trace: bool,
    /// Capture per-LP ObsEvent streams, merge them, and feed the merged
    /// stream to the dash-check semantic oracle offline.
    pub oracle: bool,
    /// Worker threads (shards).
    pub shards: u32,
    /// Keep each LAN (hosts + gateway) on one shard, so only the WAN
    /// spans shards and the epoch is the WAN propagation delay. With
    /// `false` hosts are hash-placed and the epoch shrinks to the LAN
    /// wire delay — correct, but orders of magnitude more barriers.
    pub lan_aligned: bool,
}

impl PscaleParams {
    /// The `BENCH_pscale.json` size: run by the `e12_pscale` binary at
    /// 1/2/4/8 shards with measured speedup.
    pub fn bench() -> Self {
        PscaleParams {
            lans: 8,
            hosts_per_lan: 8,
            fast_every: 4,
            voice_per_lan: 24,
            bulk_per_lan: 4,
            rpc_per_lan: 2,
            cross_fraction: 0.06,
            churn_per_wave: 8,
            churn_interval: SimDuration::from_millis(250),
            bulk_bytes: 128 * 1024,
            duration: SimDuration::from_secs(2),
            grace: SimDuration::from_millis(500),
            seed: 10,
            fault_drill: true,
            wan_outage: false,
            backup_wan: false,
            cpus: true,
            record_trace: false,
            oracle: false,
            shards: 1,
            lan_aligned: true,
        }
    }

    /// Scaled-down CI size with trace recording, for the golden
    /// determinism tests.
    pub fn ci() -> Self {
        PscaleParams {
            lans: 3,
            hosts_per_lan: 4,
            fast_every: 2,
            voice_per_lan: 6,
            bulk_per_lan: 2,
            rpc_per_lan: 1,
            cross_fraction: 0.25,
            churn_per_wave: 3,
            churn_interval: SimDuration::from_millis(200),
            bulk_bytes: 64 * 1024,
            duration: SimDuration::from_secs(1),
            grace: SimDuration::from_millis(500),
            seed: 10,
            record_trace: true,
            ..PscaleParams::bench()
        }
    }

    /// The e11-flavored CI variant: a backup long-haul path plus a
    /// mid-run WAN outage, so link-state floods, route recomputations,
    /// and the failover all cross shard boundaries.
    pub fn routing_ci() -> Self {
        PscaleParams {
            wan_outage: true,
            backup_wan: true,
            ..PscaleParams::ci()
        }
    }

    /// A seconds-scale size for hashed (LAN-splitting) placement, whose
    /// epochs are bounded by the LAN wire delay.
    pub fn micro() -> Self {
        PscaleParams {
            lans: 2,
            hosts_per_lan: 3,
            fast_every: 0,
            voice_per_lan: 3,
            bulk_per_lan: 1,
            rpc_per_lan: 1,
            cross_fraction: 0.5,
            churn_per_wave: 0,
            bulk_bytes: 16 * 1024,
            duration: SimDuration::from_millis(60),
            grace: SimDuration::from_millis(90),
            fault_drill: false,
            lan_aligned: false,
            ..PscaleParams::ci()
        }
    }

    /// Total hosts in the topology (LAN hosts + per-LAN gateways +
    /// the two backup-WAN bridge gateways when enabled).
    pub fn total_hosts(&self) -> usize {
        self.lans * (self.hosts_per_lan + 1) + if self.backup_wan { 2 } else { 0 }
    }
}

// ---------------------------------------------------------------------------
// Traffic classes and the flow plan
// ---------------------------------------------------------------------------

/// Traffic class, carried as the first payload byte of every stream
/// message (`tag = class index + 1`) so the receiving LP can classify a
/// delivery with zero session-level coordination with the sender LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Intra-LAN voice: 160 B frames every 20 ms, 40 ms budget.
    Voice = 0,
    /// WAN-crossing voice: same pacing, 150 ms budget.
    WanVoice = 1,
    /// Reliable bulk: 4 KiB chunks, pumped until sender flow control
    /// pushes back, resumed on `Drained`.
    Bulk = 2,
    /// Short-lived churn sessions (RMS cache pressure), 150 ms budget.
    Churn = 3,
}

const CLASSES: usize = 4;

impl Class {
    fn from_tag(tag: u8) -> Option<Class> {
        match tag {
            1 => Some(Class::Voice),
            2 => Some(Class::WanVoice),
            3 => Some(Class::Bulk),
            4 => Some(Class::Churn),
            _ => None,
        }
    }

    /// Lateness budget for deliveries of this class.
    fn budget(self) -> SimDuration {
        match self {
            Class::Voice => SimDuration::from_millis(40),
            Class::WanVoice | Class::Churn => SimDuration::from_millis(150),
            Class::Bulk => SimDuration::from_millis(500),
        }
    }

    fn profile(self) -> StreamProfile {
        match self {
            Class::Voice => StreamProfile::voice(),
            Class::WanVoice => wan_voice_profile(),
            Class::Bulk => StreamProfile::bulk(),
            Class::Churn => {
                let mut p = wan_voice_profile();
                // Tiny capacity so dozens of short sessions fit the WAN.
                p.capacity = 4 * 1024;
                p
            }
        }
    }
}

/// A voice profile whose delay budget survives the WAN path.
fn wan_voice_profile() -> StreamProfile {
    let mut p = StreamProfile::voice();
    p.delay =
        DelayBound::best_effort_with(SimDuration::from_millis(150), SimDuration::from_micros(10));
    p
}

/// Build a class-tagged payload: one static tag byte, then a static zero
/// body — the same zero-allocation scatter-gather path real payloads take.
fn tagged(class: Class, len: u64) -> Message {
    const TAGS: [u8; CLASSES] = [1, 2, 3, 4];
    static ZERO: [u8; 8192] = [0u8; 8192];
    let i = class as usize;
    let mut w = WireMsg::from_bytes(Bytes::from_static(&TAGS[i..i + 1]));
    if len > 1 {
        w.push(Bytes::from_static(&ZERO[..(len - 1).min(8192) as usize]));
    }
    Message::from_wire(w)
}

const VOICE_INTERVAL: SimDuration = SimDuration::from_millis(20);
const BULK_CHUNK: u64 = 4 * 1024;
const RPC_INTERVAL: SimDuration = SimDuration::from_millis(25);

/// One planned stream flow. The plan is a pure function of the
/// parameters, so every LP computes the identical plan and acts only on
/// the flows it owns an endpoint of.
#[derive(Debug, Clone)]
struct Flow {
    class: Class,
    src: HostId,
    dst: HostId,
    /// Open time, as an offset from the run start.
    start: SimDuration,
    /// Messages to send.
    count: u64,
    /// Pacing interval; zero means "pump until flow control pushes back".
    interval: SimDuration,
    /// Payload length per message, including the tag byte.
    len: u64,
}

/// One planned RPC pairing: `calls` echo calls at `interval` pacing.
#[derive(Debug, Clone, Copy)]
struct RpcFlow {
    client: HostId,
    server: HostId,
    service: u16,
    calls: u64,
    interval: SimDuration,
    start: SimDuration,
}

/// Compute the full traffic plan. Mirrors e10's population: mostly
/// intra-LAN voice with a WAN-crossing slice, intra-LAN bulk, cross-LAN
/// RPC, and churn waves of short-lived WAN sessions.
fn plan_population(p: &PscaleParams, lan_hosts: &[Vec<HostId>]) -> (Vec<Flow>, Vec<RpcFlow>) {
    assert!(p.hosts_per_lan >= 2, "need at least 2 hosts per LAN");
    let mut rng = Rng::new(p.seed);
    let mut flows = Vec::new();
    let mut rpcs = Vec::new();
    let hpl = p.hosts_per_lan;
    let voice_count = (p.duration.as_nanos() / VOICE_INTERVAL.as_nanos()).max(1);
    for l in 0..p.lans {
        for v in 0..p.voice_per_lan {
            let src = lan_hosts[l][v % hpl];
            let cross = rng.chance(p.cross_fraction);
            let (dst, class) = if cross && p.lans > 1 {
                let ol = (l + 1 + rng.below(p.lans as u64 - 1) as usize) % p.lans;
                (
                    lan_hosts[ol][rng.below(hpl as u64) as usize],
                    Class::WanVoice,
                )
            } else {
                let mut d = (v + 1 + rng.below(hpl as u64 - 1) as usize) % hpl;
                if lan_hosts[l][d] == src {
                    d = (d + 1) % hpl;
                }
                (lan_hosts[l][d], Class::Voice)
            };
            if dst == src {
                continue;
            }
            flows.push(Flow {
                class,
                src,
                dst,
                // Small stagger spreads the t=0 admission burst.
                start: SimDuration::from_micros((v as u64 % 32) * 125),
                count: voice_count,
                interval: VOICE_INTERVAL,
                len: 160,
            });
        }
        for b in 0..p.bulk_per_lan {
            let src = lan_hosts[l][b % hpl];
            let dst = lan_hosts[l][(b + hpl / 2) % hpl];
            if src == dst {
                continue;
            }
            flows.push(Flow {
                class: Class::Bulk,
                src,
                dst,
                start: SimDuration::from_millis(1),
                count: p.bulk_bytes.div_ceil(BULK_CHUNK),
                interval: SimDuration::ZERO,
                len: BULK_CHUNK,
            });
        }
        for r in 0..p.rpc_per_lan {
            let client = lan_hosts[l][r % hpl];
            let server = lan_hosts[(l + 1) % p.lans][r % hpl];
            if client == server {
                continue;
            }
            rpcs.push(RpcFlow {
                client,
                server,
                service: (100 + l * p.rpc_per_lan + r) as u16,
                calls: (p.duration.as_nanos() / RPC_INTERVAL.as_nanos()).max(1),
                interval: RPC_INTERVAL,
                start: SimDuration::from_millis(2),
            });
        }
    }
    // Churn waves: short-lived cross-site sessions between rotating
    // pairs, fully precomputed (e10 schedules them recursively; the
    // formulas are the same).
    if p.churn_per_wave > 0 {
        let end = p.duration.as_nanos();
        let mut w = 0usize;
        loop {
            let t = p.churn_interval.as_nanos() * (w as u64 + 1);
            if t + SimDuration::from_millis(300).as_nanos() >= end {
                break;
            }
            for c in 0..p.churn_per_wave {
                let l = (w * 3 + c) % p.lans;
                let ol = (l + 1 + (w + c) % p.lans.max(2).saturating_sub(1)) % p.lans;
                let src = lan_hosts[l][(w + c) % hpl];
                let dst = lan_hosts[ol][(w * 2 + c) % hpl];
                if src == dst {
                    continue;
                }
                flows.push(Flow {
                    class: Class::Churn,
                    src,
                    dst,
                    start: SimDuration::from_nanos(t),
                    count: 4,
                    interval: SimDuration::from_millis(50),
                    len: 160,
                });
            }
            w += 1;
        }
    }
    (flows, rpcs)
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// Host/network ids of one built topology — identical in every replica,
/// because every LP runs the same builder program.
struct Topo {
    lan_hosts: Vec<Vec<HostId>>,
    lan_ids: Vec<NetworkId>,
    gateways: Vec<HostId>,
    wan: NetworkId,
    /// Backup-WAN bridge gateways (empty unless `backup_wan`).
    extra: Vec<HostId>,
}

fn build_topo(p: &PscaleParams) -> (NetState, Topo) {
    let mut tb = TopologyBuilder::new();
    tb.seed(p.seed ^ 0x5ca1e);
    let wan = tb.network(NetworkSpec::long_haul("wan"));
    let mut lan_ids = Vec::new();
    let mut lan_hosts = Vec::new();
    let mut gateways = Vec::new();
    for l in 0..p.lans {
        let spec = if p.fast_every > 0 && l % p.fast_every == p.fast_every - 1 {
            NetworkSpec::fast_lan(format!("fast-{l}"))
        } else {
            NetworkSpec::ethernet(format!("lan-{l}"))
        };
        let net = tb.network(spec);
        lan_ids.push(net);
        let mut hosts = Vec::new();
        for _ in 0..p.hosts_per_lan {
            hosts.push(tb.host_on(net));
        }
        gateways.push(tb.gateway(net, wan));
        lan_hosts.push(hosts);
    }
    let mut extra = Vec::new();
    if p.backup_wan {
        // A second long-haul path from LAN 0 to the backbone, so a WAN
        // outage has somewhere to fail over to.
        let wan2 = tb.network(NetworkSpec::long_haul("wan2"));
        extra.push(tb.gateway(lan_ids[0], wan2));
        extra.push(tb.gateway(wan, wan2));
    }
    (
        tb.build(),
        Topo {
            lan_hosts,
            lan_ids,
            gateways,
            wan,
            extra,
        },
    )
}

fn make_fault_plan(p: &PscaleParams, topo: &Topo) -> FaultPlan {
    let half = SimTime::ZERO.saturating_add(SimDuration::from_nanos(p.duration.as_nanos() / 2));
    let heal = half.saturating_add(SimDuration::from_millis(150));
    if p.wan_outage {
        FaultPlan::new()
            .at(
                half,
                FaultKind::NetworkDown {
                    network: topo.wan.0,
                },
            )
            .at(
                heal,
                FaultKind::NetworkUp {
                    network: topo.wan.0,
                },
            )
    } else {
        let dark_lan = topo.lan_ids[p.lans / 2];
        let victim = topo.lan_hosts[0][p.hosts_per_lan - 1];
        FaultPlan::new()
            .at(
                half,
                FaultKind::NetworkDown {
                    network: dark_lan.0,
                },
            )
            .at(half, FaultKind::HostCrash { host: victim.0 })
            .at(
                heal,
                FaultKind::NetworkUp {
                    network: dark_lan.0,
                },
            )
            .at(heal, FaultKind::HostRestart { host: victim.0 })
    }
}

// ---------------------------------------------------------------------------
// The per-LP driver
// ---------------------------------------------------------------------------

/// Per-LP accounting, split by traffic class. Tx-side fields populate in
/// the LPs owning flow sources, rx-side fields in the LPs owning flow
/// destinations; the merged outcome sums them all.
#[derive(Debug, Default, Clone)]
struct Acct {
    opened: u64,
    failed: u64,
    sent: [u64; CLASSES],
    received: [u64; CLASSES],
    late: [u64; CLASSES],
    bytes: [u64; CLASSES],
    /// Paced messages refused by sender flow control and dropped (voice
    /// semantics: the frame is lost at the source, not retried).
    source_drops: u64,
    rpc_completed: u64,
    rpc_failed: u64,
    /// Tx session -> pacing state (BTreeMap for deterministic debug
    /// output; lookups only, never iterated).
    tx: BTreeMap<u64, TxState>,
}

#[derive(Debug, Clone)]
struct TxState {
    class: Class,
    remaining: u64,
    interval: SimDuration,
    len: u64,
}

/// Event sink rendering every observability event into the per-LP trace
/// buffer (merged by `(time, host, index)` into the run trace).
struct TraceSink {
    out: Rc<RefCell<String>>,
}

impl ObsSink for TraceSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        use std::fmt::Write;
        let _ = writeln!(
            self.out.borrow_mut(),
            "{} {} {:?}",
            time.as_nanos(),
            event.name(),
            event
        );
    }
}

/// Event sink capturing typed events for the offline oracle feed.
struct CaptureSink {
    out: Rc<RefCell<Vec<(u64, ObsEvent)>>>,
}

impl ObsSink for CaptureSink {
    fn on_event(&mut self, time: SimTime, event: &ObsEvent) {
        self.out.borrow_mut().push((time.as_nanos(), event.clone()));
    }
}

fn on_stream_event(sim: &mut Sim<Stack>, host: HostId, ev: StreamEvent, acct: &Rc<RefCell<Acct>>) {
    match ev {
        StreamEvent::Opened { session } => {
            let pacing = {
                let mut a = acct.borrow_mut();
                a.tx.get(&session).map(|t| t.interval).inspect(|_| {
                    a.opened += 1;
                })
            };
            match pacing {
                Some(iv) if iv.is_zero() => pump_bulk(sim, host, session, acct),
                Some(_) => pace(sim, host, session, Rc::clone(acct)),
                None => {}
            }
        }
        StreamEvent::OpenFailed { session, .. } => {
            let mut a = acct.borrow_mut();
            if a.tx.remove(&session).is_some() {
                a.failed += 1;
            }
        }
        StreamEvent::Drained { session } => {
            let bulk = acct
                .borrow()
                .tx
                .get(&session)
                .is_some_and(|t| t.interval.is_zero());
            if bulk {
                pump_bulk(sim, host, session, acct);
            }
        }
        StreamEvent::Delivered { msg, delay, .. } => {
            let Some(class) = msg.wire().first_byte().and_then(Class::from_tag) else {
                return;
            };
            let mut a = acct.borrow_mut();
            a.received[class as usize] += 1;
            a.bytes[class as usize] += msg.len() as u64;
            if delay > class.budget() {
                a.late[class as usize] += 1;
            }
        }
        StreamEvent::Ended { session, .. } => {
            acct.borrow_mut().tx.remove(&session);
        }
        StreamEvent::Incoming { .. } => {}
    }
}

/// Paced sender (voice/churn): one message per interval; a refusal drops
/// the frame at the source, it is never retried.
fn pace(sim: &mut Sim<Stack>, host: HostId, session: u64, acct: Rc<RefCell<Acct>>) {
    let step = {
        let mut a = acct.borrow_mut();
        a.tx.get_mut(&session).map(|t| {
            t.remaining = t.remaining.saturating_sub(1);
            (t.class, t.len, t.interval, t.remaining > 0)
        })
    };
    let Some((class, len, interval, more)) = step else {
        return;
    };
    acct.borrow_mut().sent[class as usize] += 1;
    if stream::send(sim, host, session, tagged(class, len)).is_err() {
        acct.borrow_mut().source_drops += 1;
    }
    if more {
        let a = Rc::clone(&acct);
        sim.schedule_in(interval, move |sim| pace(sim, host, session, a));
    }
}

/// Bulk sender: pump chunks until the send port refuses; `Drained`
/// resumes the pump.
fn pump_bulk(sim: &mut Sim<Stack>, host: HostId, session: u64, acct: &Rc<RefCell<Acct>>) {
    loop {
        let step = {
            let a = acct.borrow();
            match a.tx.get(&session) {
                Some(t) if t.remaining > 0 => Some((t.class, t.len)),
                _ => None,
            }
        };
        let Some((class, len)) = step else { return };
        if stream::send(sim, host, session, tagged(class, len)).is_err() {
            return;
        }
        let mut a = acct.borrow_mut();
        a.sent[class as usize] += 1;
        if let Some(t) = a.tx.get_mut(&session) {
            t.remaining -= 1;
        }
    }
}

fn rpc_tick(sim: &mut Sim<Stack>, r: RpcFlow, n: u64, acct: Rc<RefCell<Acct>>) {
    if n >= r.calls {
        return;
    }
    let a = Rc::clone(&acct);
    rkom::call(
        sim,
        r.client,
        r.server,
        r.service,
        Bytes::from_static(b"ping"),
        move |_sim, res| {
            let mut acct = a.borrow_mut();
            match res {
                Ok(_) => acct.rpc_completed += 1,
                Err(_) => acct.rpc_failed += 1,
            }
        },
    );
    sim.schedule_in(r.interval, move |sim| rpc_tick(sim, r, n + 1, acct));
}

/// The LP the executor drives: the stack replica plus the harness's
/// shared accounting handles (extracted by `finish` on the same thread).
struct PscaleLp {
    lp: StackLp,
    acct: Rc<RefCell<Acct>>,
    trace: Rc<RefCell<String>>,
    obs: Rc<RefCell<Vec<(u64, ObsEvent)>>>,
}

impl Lp for PscaleLp {
    type Env = WireEnvelope;

    fn host(&self) -> u32 {
        self.lp.host()
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.lp.next_event_time()
    }

    fn run_until_horizon(&mut self, horizon: SimTime) {
        self.lp.run_until_horizon(horizon);
    }

    fn drain_outbox(&mut self, sink: &mut Vec<WireEnvelope>) {
        self.lp.drain_outbox(sink);
    }

    fn dst_of(env: &WireEnvelope) -> u32 {
        <StackLp as Lp>::dst_of(env)
    }

    fn inject(&mut self, env: WireEnvelope) {
        self.lp.inject(env);
    }
}

/// Build host `h`'s logical process: the full replica world, the stream
/// tap on the owned host, and the owned slice of the traffic plan.
fn build_lp(
    p: &PscaleParams,
    flows: &[Flow],
    rpcs: &[RpcFlow],
    fault_plan: &FaultPlan,
    host: u32,
) -> PscaleLp {
    let owner = HostId(host);
    let trace = Rc::new(RefCell::new(String::new()));
    let obs = Rc::new(RefCell::new(Vec::new()));
    let (net, _topo) = build_topo(p);
    let mut builder = StackBuilder::new(net).obs(true);
    if p.cpus {
        builder = builder.cpus(SchedPolicy::Edf, SimDuration::from_micros(5));
    }
    if p.record_trace {
        builder = builder.obs_sink(TraceSink {
            out: Rc::clone(&trace),
        });
    }
    let mut sim = Sim::new(builder.build());
    if p.oracle {
        sim.state.net.obs.add_boxed_sink(Box::new(CaptureSink {
            out: Rc::clone(&obs),
        }));
    }

    let acct = Rc::new(RefCell::new(Acct::default()));
    {
        let a = Rc::clone(&acct);
        sim.state
            .on_stream(owner, move |sim, ev| on_stream_event(sim, owner, ev, &a));
    }
    for f in flows.iter().filter(|f| f.src == owner) {
        let f = f.clone();
        let a = Rc::clone(&acct);
        sim.schedule_in(f.start, move |sim| {
            match stream::open(sim, f.src, f.dst, f.class.profile()) {
                Ok(session) => {
                    a.borrow_mut().tx.insert(
                        session,
                        TxState {
                            class: f.class,
                            remaining: f.count,
                            interval: f.interval,
                            len: f.len,
                        },
                    );
                }
                Err(_) => a.borrow_mut().failed += 1,
            }
        });
    }
    for r in rpcs {
        if r.server == owner {
            rkom::register_service(&mut sim.state, owner, r.service, |_sim, _peer, payload| {
                payload
            });
        }
        if r.client == owner {
            let r = *r;
            let a = Rc::clone(&acct);
            sim.schedule_in(r.start, move |sim| rpc_tick(sim, r, 0, a));
        }
    }
    // The fault plan is replicated: every LP applies it to its replica at
    // the same times, so routing and admission see the same world; the
    // ownership guard in `flood_from` keeps packet-originating side
    // effects (witness floods) to the owning LP.
    if p.fault_drill {
        schedule_fault_plan(&mut sim, fault_plan);
    }
    PscaleLp {
        lp: StackLp::new(sim, owner, p.seed),
        acct,
        trace,
        obs,
    }
}

/// What one LP contributes to the merged outcome.
struct LpOut {
    host: u32,
    acct: Acct,
    events: u64,
    peak_queue: u64,
    registry: MetricRegistry,
    trace: String,
    obs: Vec<(u64, ObsEvent)>,
}

fn finish_lp(plp: PscaleLp) -> LpOut {
    let host = plp.lp.host();
    let mut sim = plp.lp.sim;
    let peak_queue = sim
        .state
        .net
        .hosts
        .iter()
        .flat_map(|h| h.ifaces.iter())
        .map(|i| i.stats.max_queued_bytes)
        .max()
        .unwrap_or(0);
    LpOut {
        host,
        acct: plp.acct.borrow().clone(),
        events: sim.events_processed(),
        peak_queue,
        registry: std::mem::take(&mut sim.state.net.obs.registry),
        trace: plp.trace.borrow().clone(),
        obs: std::mem::take(&mut plp.obs.borrow_mut()),
    }
}

// ---------------------------------------------------------------------------
// The outcome
// ---------------------------------------------------------------------------

/// Everything a parallel-scale run produces, merged across LPs. All
/// fields except `wall_secs`, `allocs`, `speedup`, and `cores` are
/// deterministic for a given [`PscaleParams`] — *including* the shard
/// count, which is the whole point.
#[derive(Debug)]
pub struct PscaleOutcome {
    /// Hosts (= logical processes) in the topology.
    pub hosts: usize,
    /// Worker threads this run used.
    pub shards: u32,
    /// CPU cores available on the measuring machine (speedup context).
    pub cores: usize,
    /// Sessions opened successfully, summed over source LPs.
    pub streams_opened: u64,
    /// Session opens refused (admission, routing, or faults).
    pub open_failed: u64,
    /// Engine events executed, summed over LPs.
    pub events: u64,
    /// ST messages delivered to ports (merged registry `st.deliver`).
    pub messages: u64,
    /// Per-class messages sent (source-side accounting).
    pub sent: [u64; CLASSES],
    /// Per-class messages delivered (destination-side accounting).
    pub received: [u64; CLASSES],
    /// Per-class deliveries past the class budget.
    pub late: [u64; CLASSES],
    /// Per-class delivered payload bytes.
    pub bytes: [u64; CLASSES],
    /// Paced frames dropped at the source by sender flow control.
    pub source_drops: u64,
    /// RPC calls completed / failed.
    pub rpc_completed: u64,
    /// RPC calls that returned an error.
    pub rpc_failed: u64,
    /// Virtual seconds simulated (the horizon).
    pub sim_secs: f64,
    /// Wall-clock seconds of `run_sharded` (not deterministic).
    pub wall_secs: f64,
    /// Peak interface transmit-queue depth, bytes, across all LPs.
    pub peak_queue_bytes: u64,
    /// RMS cache misses (merged registry).
    pub cache_misses: u64,
    /// RMS cache evictions (merged registry).
    pub cache_evictions: u64,
    /// Fault events in the drill plan (each LP applies all of them).
    pub faults_injected: u64,
    /// Merged metric-registry dump (JSON lines, host-ascending merge).
    pub registry_dump: String,
    /// Merged observability trace (empty unless `record_trace`).
    pub trace_dump: String,
    /// Heap allocations during the run; filled by the binary's counting
    /// allocator. At 1 shard this is deterministic; at P shards mailbox
    /// growth order makes it wobble slightly, so it is excluded from the
    /// digest and gated with slack.
    pub allocs: u64,
    /// Wall-clock speedup vs the 1-shard run; filled by scan drivers.
    pub speedup: f64,
    /// Semantic-oracle violations over the merged event stream.
    pub oracle_violations: u64,
    /// Human-readable violation descriptions (not part of the digest).
    pub oracle_detail: Vec<String>,
}

impl PscaleOutcome {
    /// Voice-class on-time fraction (voice + WAN voice + churn).
    pub fn voice_on_time(&self) -> f64 {
        let idx = [
            Class::Voice as usize,
            Class::WanVoice as usize,
            Class::Churn as usize,
        ];
        let sent: u64 = idx.iter().map(|&i| self.sent[i]).sum();
        let good: u64 = idx
            .iter()
            .map(|&i| {
                self.received[i]
                    .saturating_sub(self.late[i])
                    .min(self.sent[i])
            })
            .sum();
        if sent == 0 {
            0.0
        } else {
            good as f64 / sent as f64
        }
    }

    /// Bulk payload bytes delivered.
    pub fn bulk_delivered(&self) -> u64 {
        self.bytes[Class::Bulk as usize]
    }

    /// Heap allocations per engine event (0 when not measured).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }

    /// Engine events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The deterministic portion, byte-identical across shard counts and
    /// placements (the tentpole's enforced equality).
    pub fn determinism_digest(&self) -> String {
        format!(
            "opened={} failed={} events={} messages={} sent={:?} received={:?} \
             late={:?} bytes={:?} drops={} rpc={}/{} sim_secs={:.9} peak_queue={} \
             misses={} evictions={} faults={}\n\
             --- registry ---\n{}--- trace ---\n{}",
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.sent,
            self.received,
            self.late,
            self.bytes,
            self.source_drops,
            self.rpc_completed,
            self.rpc_failed,
            self.sim_secs,
            self.peak_queue_bytes,
            self.cache_misses,
            self.cache_evictions,
            self.faults_injected,
            self.registry_dump,
            self.trace_dump,
        )
    }

    /// FNV-1a of the digest, for cheap cross-run comparison in JSON.
    pub fn digest_hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.determinism_digest().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// One-run JSON object for `BENCH_pscale.json` / `check_bench.sh`.
    pub fn to_json(&self, label: &str, config: &str) -> String {
        format!(
            "{{\"label\":\"{label}\",\"config\":\"{config}\",\
             \"shards\":{},\"cores\":{},\"hosts\":{},\
             \"streams_opened\":{},\"open_failed\":{},\
             \"events\":{},\"messages\":{},\"rpc_completed\":{},\
             \"voice_on_time\":{:.4},\"bulk_delivered\":{},\
             \"sim_secs\":{:.3},\"wall_secs\":{:.3},\
             \"events_per_sec\":{:.0},\"allocs_per_event\":{:.3},\
             \"speedup\":{:.3},\"peak_queue_bytes\":{},\
             \"cache_misses\":{},\"cache_evictions\":{},\
             \"faults_injected\":{},\"oracle_violations\":{},\
             \"digest_hash\":\"{}\"}}",
            self.shards,
            self.cores,
            self.hosts,
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.rpc_completed,
            self.voice_on_time(),
            self.bulk_delivered(),
            self.sim_secs,
            self.wall_secs,
            self.events_per_sec(),
            self.allocs_per_event(),
            self.speedup,
            self.peak_queue_bytes,
            self.cache_misses,
            self.cache_evictions,
            self.faults_injected,
            self.oracle_violations,
            self.digest_hash(),
        )
    }
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

/// Build the shard plan, run every host's LP to the horizon on
/// `params.shards` workers, and merge the outcome.
pub fn run_pscale(params: &PscaleParams) -> PscaleOutcome {
    let (proto, topo) = build_topo(params);
    let hosts_total = proto.hosts.len() as u32;
    let plan = if params.lan_aligned {
        let groups: Vec<Vec<u32>> = topo
            .lan_hosts
            .iter()
            .zip(&topo.gateways)
            .enumerate()
            .map(|(l, (hs, g))| {
                let mut group: Vec<u32> = hs.iter().map(|h| h.0).collect();
                group.push(g.0);
                // Keep the backup-WAN bridges with LAN 0, so no LAN ever
                // spans shards and the epoch stays at the WAN delay.
                if l == 0 {
                    group.extend(topo.extra.iter().map(|h| h.0));
                }
                group
            })
            .collect();
        ShardPlan::grouped(hosts_total, params.shards, &groups)
    } else {
        ShardPlan::hashed(hosts_total, params.shards)
    };
    let cfg = ParConfig {
        horizon: SimTime::ZERO
            .saturating_add(params.duration)
            .saturating_add(params.grace),
        cross_lookahead: cross_shard_lookahead(&proto, &plan),
        local_lookahead: local_lookahead(&proto),
    };
    let (flows, rpcs) = plan_population(params, &topo.lan_hosts);
    let fault_plan = make_fault_plan(params, &topo);
    let faults = if params.fault_drill {
        fault_plan.events.len() as u64
    } else {
        0
    };

    let started = Instant::now();
    let outs = run_sharded(
        &plan,
        &cfg,
        |h| build_lp(params, &flows, &rpcs, &fault_plan, h),
        finish_lp,
    );
    let wall_secs = started.elapsed().as_secs_f64();

    merge_outcome(params, outs, faults, wall_secs, cfg.horizon)
}

fn merge_outcome(
    params: &PscaleParams,
    outs: Vec<LpOut>,
    faults_injected: u64,
    wall_secs: f64,
    horizon: SimTime,
) -> PscaleOutcome {
    // `run_sharded` returns results indexed by host; the merge order
    // (host ascending) is therefore fixed regardless of the plan.
    let mut registry = MetricRegistry::new();
    let mut events = 0u64;
    let mut peak_queue = 0u64;
    let mut acct = Acct::default();
    for o in &outs {
        registry.merge_from(&o.registry);
        events += o.events;
        peak_queue = peak_queue.max(o.peak_queue);
        acct.opened += o.acct.opened;
        acct.failed += o.acct.failed;
        acct.source_drops += o.acct.source_drops;
        acct.rpc_completed += o.acct.rpc_completed;
        acct.rpc_failed += o.acct.rpc_failed;
        for c in 0..CLASSES {
            acct.sent[c] += o.acct.sent[c];
            acct.received[c] += o.acct.received[c];
            acct.late[c] += o.acct.late[c];
            acct.bytes[c] += o.acct.bytes[c];
        }
    }
    let trace_parts: Vec<(u32, String)> = outs.iter().map(|o| (o.host, o.trace.clone())).collect();
    let trace_dump = merge_traces(&trace_parts);

    let (oracle_violations, oracle_detail) = if params.oracle {
        feed_oracle(&outs)
    } else {
        (0, Vec::new())
    };

    let messages = registry.counter_value("st.deliver");
    let cache_misses = registry.counter_value("st.cache_miss");
    let cache_evictions = registry.counter_value("st.cache_eviction");
    let registry_dump = registry.to_json_lines();

    PscaleOutcome {
        hosts: outs.len(),
        shards: params.shards,
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        streams_opened: acct.opened,
        open_failed: acct.failed,
        events,
        messages,
        sent: acct.sent,
        received: acct.received,
        late: acct.late,
        bytes: acct.bytes,
        source_drops: acct.source_drops,
        rpc_completed: acct.rpc_completed,
        rpc_failed: acct.rpc_failed,
        sim_secs: horizon.as_secs_f64(),
        wall_secs,
        peak_queue_bytes: peak_queue,
        cache_misses,
        cache_evictions,
        faults_injected,
        registry_dump,
        trace_dump,
        allocs: 0,
        speedup: 0.0,
        oracle_violations,
        oracle_detail,
    }
}

/// Merge the per-LP typed event streams by `(time, host, index)` — the
/// same total order as the trace merge — and replay the merged stream
/// through the dash-check semantic oracle.
fn feed_oracle(outs: &[LpOut]) -> (u64, Vec<String>) {
    let mut all: Vec<(u64, u32, usize, &ObsEvent)> = Vec::new();
    for o in outs {
        for (idx, (t, e)) in o.obs.iter().enumerate() {
            all.push((*t, o.host, idx, e));
        }
    }
    all.sort_by_key(|a| (a.0, a.1, a.2));
    // Completion is off (horizon-cut run, traffic legitimately in
    // flight); det-delay stays on; unreliable media legitimately skips
    // lost messages, so FIFO-gap checking is off. Same config as e10.
    let (mut sink, handle) = dash_check::oracle(dash_check::OracleConfig {
        check_completion: false,
        check_det_delay: true,
        check_fifo_gaps: false,
    });
    for (t, _, _, e) in &all {
        sink.on_event(SimTime::ZERO.saturating_add(SimDuration::from_nanos(*t)), e);
    }
    let violations = handle.violations();
    let detail = violations
        .iter()
        .map(|v| format!("[{}] t={} {}", v.invariant, v.at.as_nanos(), v.detail))
        .collect();
    (violations.len() as u64, detail)
}

// ---------------------------------------------------------------------------
// The experiment table
// ---------------------------------------------------------------------------

/// e12_pscale — shard-count invariance of the parallel executor.
///
/// Claim: the merged outcome of the conservative parallel run is
/// byte-identical from 1 shard to P shards; threads change wall-clock
/// only.
pub fn e12_pscale() -> Table {
    let mut t = Table::new(
        "e12_pscale",
        "e10 macro-workload on the conservative parallel executor",
        "P-shard runs merge byte-identical to the 1-shard run; threads change wall-clock only",
    );
    t.columns(&[
        "shards",
        "events",
        "msgs",
        "opened",
        "refused",
        "digest vs 1 shard",
        "wall s",
    ]);
    let mut reference: Option<String> = None;
    for shards in [1u32, 2, 4] {
        let mut p = PscaleParams::ci();
        p.shards = shards;
        let o = run_pscale(&p);
        let digest = o.determinism_digest();
        let verdict = match &reference {
            None => {
                reference = Some(digest);
                "reference".to_string()
            }
            Some(r) if *r == digest => "identical".to_string(),
            Some(_) => "DIVERGED".to_string(),
        };
        t.row(vec![
            shards.to_string(),
            o.events.to_string(),
            o.messages.to_string(),
            o.streams_opened.to_string(),
            o.open_failed.to_string(),
            verdict,
            format!("{:.2}", o.wall_secs),
        ]);
    }
    t.note("serial reference = the same LP machinery at 1 shard; the legacy single-world engine is a different (equally valid) schedule of the same model");
    t.note(
        "bench-size numbers at 1/2/4/8 shards live in BENCH_pscale.json via the e12_pscale binary",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_shards_merge_identical_to_one() {
        let mut p = PscaleParams::ci();
        p.shards = 1;
        let a = run_pscale(&p);
        assert!(a.streams_opened > 15, "opened {}", a.streams_opened);
        assert!(a.messages > 500, "messages {}", a.messages);
        assert_eq!(a.faults_injected, 4);
        assert!(a.rpc_completed > 10, "rpc {}", a.rpc_completed);
        p.shards = 2;
        let b = run_pscale(&p);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn hashed_placement_matches_aligned() {
        // Hashed placement splits LANs across shards, shrinking epochs
        // to the LAN wire delay — tiny workload, same digest.
        let mut p = PscaleParams::micro();
        p.shards = 1;
        let a = run_pscale(&p);
        assert!(a.messages > 20, "messages {}", a.messages);
        p.shards = 3;
        let b = run_pscale(&p);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
        p.shards = 3;
        p.lan_aligned = true;
        let c = run_pscale(&p);
        assert_eq!(a.determinism_digest(), c.determinism_digest());
    }

    #[test]
    fn oracle_is_clean_on_the_merged_stream() {
        let mut p = PscaleParams::ci();
        p.record_trace = false;
        p.oracle = true;
        p.shards = 2;
        let o = run_pscale(&p);
        assert_eq!(
            o.oracle_violations, 0,
            "oracle violations: {:?}",
            o.oracle_detail
        );
    }

    #[test]
    fn json_shape_carries_the_parallel_fields() {
        let mut p = PscaleParams::micro();
        p.shards = 2;
        let o = run_pscale(&p);
        let j = o.to_json("test", "micro");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"shards\":2"));
        assert!(j.contains("\"digest_hash\":\""));
        assert!(j.contains("\"speedup\":"));
    }
}
