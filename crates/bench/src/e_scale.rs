//! e10_scale — the macro-workload that opens the scale regime.
//!
//! The ROADMAP's north star is a stack that "serves heavy traffic"; every
//! other experiment runs a handful of streams. e10 builds an internetwork
//! of many LANs joined by a WAN backbone, loads it with a mixed
//! voice/bulk/RPC population (thousands of concurrent ST streams at the
//! `full` size), churns the subtransport's RMS cache with short-lived
//! cross-site sessions, and runs a mid-run fault drill — then reports the
//! engine-level throughput numbers (`events/sec`, `messages/sec`,
//! wall-clock, peak interface queue depth) that `BENCH_scale.json` tracks
//! across PRs.
//!
//! The same scenario serves three masters:
//! - `ScaleParams::full()` — the benchmark size, driven by the
//!   `e10_scale` binary, which writes the JSON consumed by
//!   `scripts/check_bench.sh`;
//! - `ScaleParams::bench()` — a mid-size run for the regression gate;
//! - `ScaleParams::ci()` — a scaled-down, trace-recording size that
//!   `tests/determinism.rs` runs twice and compares byte for byte.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use dash_apps::bulk::{start_bulk, BulkStats};
use dash_apps::media::{start_media, MediaSpec, MediaStats};
use dash_apps::rpc::{start_rkom_rpc, RpcSpec, RpcStats};
use dash_apps::taps::Dispatcher;
use dash_net::fault::schedule_fault_plan;
use dash_net::topology::TopologyBuilder;
use dash_net::{HostId, NetworkSpec};
use dash_sim::cpu::SchedPolicy;
use dash_sim::fault::{FaultKind, FaultPlan};
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_transport::stack::{Stack, StackBuilder};
use dash_transport::stream::StreamProfile;
use rms_core::delay::DelayBound;

use crate::table::{f, pct, Table};

/// Knobs for one scale run. All sizes are deterministic functions of the
/// parameters and `seed`; wall-clock is the only non-reproducible output.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Edge LANs hanging off the WAN backbone.
    pub lans: usize,
    /// Hosts per LAN (the LAN's gateway is extra).
    pub hosts_per_lan: usize,
    /// Every k-th LAN is a 100 Mb/s fast LAN instead of 10 Mb/s Ethernet.
    pub fast_every: usize,
    /// Long-lived voice sessions originating per LAN.
    pub voice_per_lan: usize,
    /// Bulk transfers per LAN.
    pub bulk_per_lan: usize,
    /// RPC client/server pairs per LAN (cross-LAN over the WAN).
    pub rpc_per_lan: usize,
    /// Fraction of voice sessions that cross the WAN (admission pressure).
    pub cross_fraction: f64,
    /// Short-lived sessions opened per churn wave (RMS cache churn).
    pub churn_per_wave: usize,
    /// Interval between churn waves.
    pub churn_interval: SimDuration,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// Seed for placement and source randomness.
    pub seed: u64,
    /// Run the mid-run fault drill (LAN outage + host crash, then heal).
    pub fault_drill: bool,
    /// Model per-host protocol CPUs with EDF scheduling.
    pub cpus: bool,
    /// Record the network-layer trace (determinism runs only; costly).
    pub record_trace: bool,
    /// Attach the dash-check semantic oracle and report its violation
    /// count. Off for baseline-compared runs: the oracle's bookkeeping
    /// allocates, which would skew `allocs_per_event`.
    pub oracle: bool,
}

impl ScaleParams {
    /// The benchmark size: hundreds of hosts, thousands of ST streams.
    pub fn full() -> Self {
        ScaleParams {
            lans: 20,
            hosts_per_lan: 14,
            fast_every: 4,
            voice_per_lan: 100,
            bulk_per_lan: 6,
            rpc_per_lan: 4,
            cross_fraction: 0.06,
            churn_per_wave: 20,
            churn_interval: SimDuration::from_millis(250),
            duration: SimDuration::from_secs(2),
            seed: 10,
            fault_drill: true,
            cpus: true,
            record_trace: false,
            oracle: false,
        }
    }

    /// Mid-size run for the `check_bench.sh` regression gate (~seconds).
    pub fn bench() -> Self {
        ScaleParams {
            lans: 8,
            hosts_per_lan: 8,
            voice_per_lan: 24,
            bulk_per_lan: 4,
            rpc_per_lan: 2,
            churn_per_wave: 8,
            ..ScaleParams::full()
        }
    }

    /// Scaled-down CI size with trace recording, for the golden
    /// determinism test.
    pub fn ci() -> Self {
        ScaleParams {
            lans: 3,
            hosts_per_lan: 4,
            fast_every: 2,
            voice_per_lan: 6,
            bulk_per_lan: 2,
            rpc_per_lan: 1,
            cross_fraction: 0.25,
            churn_per_wave: 3,
            churn_interval: SimDuration::from_millis(200),
            duration: SimDuration::from_secs(1),
            seed: 10,
            fault_drill: true,
            cpus: true,
            record_trace: true,
            oracle: false,
        }
    }

    /// Total hosts this topology will have (LAN hosts + gateways).
    pub fn total_hosts(&self) -> usize {
        self.lans * (self.hosts_per_lan + 1)
    }
}

/// Everything a scale run produces. All fields except `wall_secs` (and the
/// rates derived from it) are deterministic for a given [`ScaleParams`].
#[derive(Debug)]
pub struct ScaleOutcome {
    /// Hosts in the topology.
    pub hosts: usize,
    /// Sessions opened successfully (voice + bulk + churn; RPC excluded —
    /// RKOM rides cached channels, not per-call streams).
    pub streams_opened: u64,
    /// Session opens refused (admission or routing).
    pub open_failed: u64,
    /// Engine events executed.
    pub events: u64,
    /// ST messages delivered to ports (registry `st.deliver`).
    pub messages: u64,
    /// Voice frames delivered on time, as a fraction of frames sent.
    pub voice_on_time: f64,
    /// RPC calls completed.
    pub rpc_completed: u64,
    /// Bulk payload bytes delivered.
    pub bulk_delivered: u64,
    /// Virtual seconds simulated.
    pub sim_secs: f64,
    /// Wall-clock seconds the run loop took (not deterministic).
    pub wall_secs: f64,
    /// Peak interface transmit-queue depth, bytes, across all hosts.
    pub peak_queue_bytes: u64,
    /// RMS cache misses (each one is a fresh network-RMS creation — the
    /// churn the short-lived cross-site sessions are there to cause).
    pub cache_misses: u64,
    /// RMS cache evictions (idle slots LRU-evicted beyond the limit).
    pub cache_evictions: u64,
    /// Faults injected by the drill.
    pub faults_injected: u64,
    /// Full metric-registry dump (JSON lines, deterministic ordering).
    pub registry_dump: String,
    /// Network-layer trace dump (empty unless `record_trace`).
    pub trace_dump: String,
    /// Heap allocations made during the run. Zero unless the caller runs
    /// under a counting allocator and fills it in (the e10 binary does);
    /// excluded from [`Self::determinism_digest`] because the count is a
    /// property of the build, not of the simulated world.
    pub allocs: u64,
    /// Semantic-oracle violations (0 when the oracle is off — and, the
    /// gate asserts, when it is on).
    pub oracle_violations: u64,
    /// Human-readable description of each violation, for diagnosis.
    /// Empty on a clean run; not part of the digest or JSON.
    pub oracle_detail: Vec<String>,
}

impl ScaleOutcome {
    /// Heap allocations per engine event (0 when not measured).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }

    /// Engine events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Delivered messages per wall-clock second.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.messages as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// One-run JSON object for `BENCH_scale.json` / `check_bench.sh`.
    pub fn to_json(&self, label: &str, config: &str) -> String {
        format!(
            "{{\"label\":\"{label}\",\"config\":\"{config}\",\
             \"hosts\":{},\"streams_opened\":{},\"open_failed\":{},\
             \"events\":{},\"messages\":{},\"sim_secs\":{:.3},\
             \"wall_secs\":{:.3},\"events_per_sec\":{:.0},\
             \"msgs_per_sec\":{:.0},\"allocs_per_event\":{:.3},\
             \"peak_queue_bytes\":{},\
             \"cache_misses\":{},\"cache_evictions\":{},\"faults_injected\":{},\
             \"oracle_violations\":{}}}",
            self.hosts,
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.sim_secs,
            self.wall_secs,
            self.events_per_sec(),
            self.msgs_per_sec(),
            self.allocs_per_event(),
            self.peak_queue_bytes,
            self.cache_misses,
            self.cache_evictions,
            self.faults_injected,
            self.oracle_violations,
        )
    }

    /// The deterministic portion, for byte-identical replay comparison.
    pub fn determinism_digest(&self) -> String {
        format!(
            "streams={} failed={} events={} messages={} sim_secs={:.9} \
             peak_queue={} misses={} evictions={} faults={}\n\
             --- registry ---\n{}--- trace ---\n{}",
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.sim_secs,
            self.peak_queue_bytes,
            self.cache_misses,
            self.cache_evictions,
            self.faults_injected,
            self.registry_dump,
            self.trace_dump,
        )
    }
}

/// Event sink that renders every observability event into a shared string
/// buffer — the byte-comparable "trace" of a determinism run.
struct SharedTraceSink {
    out: Rc<RefCell<String>>,
}

impl dash_sim::obs::ObsSink for SharedTraceSink {
    fn on_event(&mut self, time: SimTime, event: &dash_sim::obs::ObsEvent) {
        use std::fmt::Write;
        let _ = writeln!(
            self.out.borrow_mut(),
            "{} {} {:?}",
            time.as_nanos(),
            event.name(),
            event
        );
    }
}

/// A voice spec whose delay budget survives the WAN path (cf.
/// fig1_layering: the point is admission and load, not LAN deadlines).
fn wan_voice(duration: SimDuration) -> MediaSpec {
    let mut spec = MediaSpec::voice(duration);
    spec.delay_budget = SimDuration::from_millis(150);
    spec.profile.delay =
        DelayBound::best_effort_with(SimDuration::from_millis(150), SimDuration::from_micros(10));
    spec
}

struct Population {
    voice: Vec<Rc<RefCell<MediaStats>>>,
    bulk: Vec<Rc<RefCell<BulkStats>>>,
    rpc: Vec<Rc<RefCell<RpcStats>>>,
    churn: Rc<RefCell<Vec<Rc<RefCell<MediaStats>>>>>,
}

/// Build the topology, load the population, run for `params.duration`
/// virtual seconds, and collect the outcome.
pub fn run_scale(params: &ScaleParams) -> ScaleOutcome {
    let mut rng = dash_sim::rng::Rng::new(params.seed);

    // Topology: `lans` edge LANs, each with a gateway onto the WAN.
    let mut tb = TopologyBuilder::new();
    tb.seed(params.seed ^ 0x5ca1e);
    let wan = tb.network(NetworkSpec::long_haul("wan"));
    let mut lan_ids = Vec::new();
    let mut lan_hosts: Vec<Vec<HostId>> = Vec::new();
    for l in 0..params.lans {
        let spec = if params.fast_every > 0 && l % params.fast_every == params.fast_every - 1 {
            NetworkSpec::fast_lan(format!("fast-{l}"))
        } else {
            NetworkSpec::ethernet(format!("lan-{l}"))
        };
        let net = tb.network(spec);
        lan_ids.push(net);
        let mut hosts = Vec::new();
        for _ in 0..params.hosts_per_lan {
            hosts.push(tb.host_on(net));
        }
        tb.gateway(net, wan);
        lan_hosts.push(hosts);
    }
    let mut builder = StackBuilder::new(tb.build()).obs(true);
    if params.cpus {
        builder = builder.cpus(SchedPolicy::Edf, SimDuration::from_micros(5));
    }
    let trace_buf: Rc<RefCell<String>> = Rc::new(RefCell::new(String::new()));
    if params.record_trace {
        builder = builder.obs_sink(SharedTraceSink {
            out: Rc::clone(&trace_buf),
        });
    }
    let mut sim = Sim::new(builder.build());
    // Completion is off (the run is horizon-cut, traffic is legitimately
    // in flight at the end); det-delay stays on, faults self-excuse.
    let oracle_handle = if params.oracle {
        let (sink, handle) = dash_check::oracle(dash_check::OracleConfig {
            check_completion: false,
            check_det_delay: true,
            // Unreliable media streams legitimately skip lost messages.
            check_fifo_gaps: false,
        });
        sim.state.net.obs.add_boxed_sink(Box::new(sink));
        Some(handle)
    } else {
        None
    };
    let all_hosts: Vec<HostId> = lan_hosts.iter().flatten().copied().collect();
    let taps = Dispatcher::install(&mut sim, &all_hosts);

    let mut pop = Population {
        voice: Vec::new(),
        bulk: Vec::new(),
        rpc: Vec::new(),
        churn: Rc::new(RefCell::new(Vec::new())),
    };

    // Long-lived voice: mostly intra-LAN, a slice crossing the WAN (that
    // slice is where capacity admission starts binding).
    for l in 0..params.lans {
        for v in 0..params.voice_per_lan {
            let src = lan_hosts[l][v % params.hosts_per_lan];
            let cross = rng.chance(params.cross_fraction);
            let (dst, spec) = if cross && params.lans > 1 {
                let ol = (l + 1 + rng.below(params.lans as u64 - 1) as usize) % params.lans;
                let dst = lan_hosts[ol][rng.below(params.hosts_per_lan as u64) as usize];
                (dst, wan_voice(params.duration))
            } else {
                let mut d = (v + 1 + rng.below(params.hosts_per_lan as u64 - 1) as usize)
                    % params.hosts_per_lan;
                if lan_hosts[l][d] == src {
                    d = (d + 1) % params.hosts_per_lan;
                }
                (lan_hosts[l][d], MediaSpec::voice(params.duration))
            };
            let stats = start_media(&mut sim, &taps, src, dst, spec, rng.next_u64());
            pop.voice.push(stats);
        }
        for b in 0..params.bulk_per_lan {
            let src = lan_hosts[l][b % params.hosts_per_lan];
            let dst = lan_hosts[l][(b + params.hosts_per_lan / 2) % params.hosts_per_lan];
            let stats = start_bulk(
                &mut sim,
                &taps,
                src,
                dst,
                256 * 1024,
                4 * 1024,
                StreamProfile::bulk(),
            );
            pop.bulk.push(stats);
        }
        for r in 0..params.rpc_per_lan {
            let client = lan_hosts[l][r % params.hosts_per_lan];
            let server = lan_hosts[(l + 1) % params.lans][r % params.hosts_per_lan];
            let spec = RpcSpec {
                rate: 40.0,
                duration: params.duration,
                ..RpcSpec::default()
            };
            let stats = start_rkom_rpc(&mut sim, client, server, spec, rng.next_u64());
            pop.rpc.push(stats);
        }
    }

    // Churn waves: short-lived cross-site sessions between rotating pairs.
    // Each wave creates control channels and data RMSs to fresh peers, so
    // the subtransport's per-peer cache fills and evicts (§4.2 caching).
    if params.churn_per_wave > 0 {
        schedule_churn_wave(
            &mut sim,
            &taps,
            lan_hosts.clone(),
            params.clone(),
            Rc::clone(&pop.churn),
            rng.fork(0xc4u64),
            0,
        );
    }

    // Mid-run fault drill: one LAN goes dark and a host crashes; both heal
    // well before the run ends so recovery is part of the measurement.
    let mut faults = 0u64;
    if params.fault_drill {
        let half =
            SimTime::ZERO.saturating_add(SimDuration::from_nanos(params.duration.as_nanos() / 2));
        let heal = half.saturating_add(SimDuration::from_millis(150));
        let dark_lan = lan_ids[params.lans / 2];
        let victim = lan_hosts[0][params.hosts_per_lan - 1];
        let plan = FaultPlan::new()
            .at(
                half,
                FaultKind::NetworkDown {
                    network: dark_lan.0,
                },
            )
            .at(half, FaultKind::HostCrash { host: victim.0 })
            .at(
                heal,
                FaultKind::NetworkUp {
                    network: dark_lan.0,
                },
            )
            .at(heal, FaultKind::HostRestart { host: victim.0 });
        faults = plan.events.len() as u64;
        schedule_fault_plan(&mut sim, &plan);
    }

    // Run to a fixed virtual horizon (duration + drain grace) so the
    // outcome is a deterministic function of the parameters.
    let started = Instant::now();
    let horizon = SimTime::ZERO
        .saturating_add(params.duration)
        .saturating_add(SimDuration::from_millis(500));
    sim.run_until(horizon);
    let wall_secs = started.elapsed().as_secs_f64();

    let mut outcome = collect_outcome(&mut sim, &pop, params, faults, wall_secs, trace_buf);
    if let Some(handle) = oracle_handle {
        let violations = handle.violations();
        outcome.oracle_violations = violations.len() as u64;
        outcome.oracle_detail = violations
            .iter()
            .map(|v| format!("[{}] t={} {}", v.invariant, v.at.as_nanos(), v.detail))
            .collect();
    }
    outcome
}

fn schedule_churn_wave(
    sim: &mut Sim<Stack>,
    taps: &Dispatcher,
    lan_hosts: Vec<Vec<HostId>>,
    params: ScaleParams,
    sink: Rc<RefCell<Vec<Rc<RefCell<MediaStats>>>>>,
    mut rng: dash_sim::rng::Rng,
    wave: usize,
) {
    let end = SimTime::ZERO.saturating_add(params.duration);
    if sim
        .now()
        .saturating_add(params.churn_interval)
        .saturating_add(SimDuration::from_millis(300))
        >= end
    {
        return;
    }
    let taps = taps.clone();
    let interval = params.churn_interval;
    sim.schedule_in(interval, move |sim| {
        for c in 0..params.churn_per_wave {
            // Rotate source LAN and peer with the wave so each wave talks
            // to fresh peers — that is what churns the RMS cache.
            let l = (wave * 3 + c) % params.lans;
            let ol = (l + 1 + (wave + c) % params.lans.max(2).saturating_sub(1)) % params.lans;
            let src = lan_hosts[l][(wave + c) % params.hosts_per_lan];
            let dst = lan_hosts[ol][(wave * 2 + c) % params.hosts_per_lan];
            if src == dst {
                continue;
            }
            let mut spec = wan_voice(SimDuration::from_millis(200));
            // Tiny capacity so dozens of short sessions fit the WAN.
            spec.interval = SimDuration::from_millis(50);
            spec.profile.capacity = 4 * 1024;
            let stats = start_media(sim, &taps, src, dst, spec, rng.next_u64());
            sink.borrow_mut().push(stats);
        }
        schedule_churn_wave(sim, &taps, lan_hosts, params, sink, rng, wave + 1);
    });
}

fn collect_outcome(
    sim: &mut Sim<Stack>,
    pop: &Population,
    params: &ScaleParams,
    faults_injected: u64,
    wall_secs: f64,
    trace_buf: Rc<RefCell<String>>,
) -> ScaleOutcome {
    let mut streams_opened = 0u64;
    let mut open_failed = 0u64;
    let mut voice_sent = 0u64;
    let mut voice_on_time = 0u64;
    let churn = pop.churn.borrow();
    for v in pop.voice.iter().chain(churn.iter()) {
        let s = v.borrow();
        if s.failed {
            open_failed += 1;
        } else {
            streams_opened += 1;
        }
        voice_sent += s.sent;
        voice_on_time += s.received.saturating_sub(s.late).min(s.sent);
    }
    let mut bulk_delivered = 0u64;
    for b in &pop.bulk {
        let s = b.borrow();
        if s.failed && s.delivered_bytes == 0 {
            open_failed += 1;
        } else {
            streams_opened += 1;
        }
        bulk_delivered += s.delivered_bytes;
    }
    let rpc_completed: u64 = pop.rpc.iter().map(|r| r.borrow().completed).sum();

    let peak_queue_bytes = sim
        .state
        .net
        .hosts
        .iter()
        .flat_map(|h| h.ifaces.iter())
        .map(|i| i.stats.max_queued_bytes)
        .max()
        .unwrap_or(0);

    let registry = &mut sim.state.net.obs.registry;
    let messages = registry.counter_value("st.deliver");
    let cache_misses = registry.counter_value("st.cache_miss");
    let cache_evictions = registry.counter_value("st.cache_eviction");
    let registry_dump = registry.to_json_lines();
    let trace_dump = trace_buf.borrow().clone();

    ScaleOutcome {
        hosts: params.total_hosts(),
        streams_opened,
        open_failed,
        events: sim.events_processed(),
        messages,
        voice_on_time: if voice_sent == 0 {
            0.0
        } else {
            voice_on_time as f64 / voice_sent as f64
        },
        rpc_completed,
        bulk_delivered,
        sim_secs: sim.now().as_secs_f64(),
        wall_secs,
        peak_queue_bytes,
        cache_misses,
        cache_evictions,
        faults_injected,
        registry_dump,
        trace_dump,
        allocs: 0,
        oracle_violations: 0,
        oracle_detail: Vec::new(),
    }
}

/// e10_scale — scaling shape at increasing stream populations.
///
/// Claim: delivered throughput scales ~linearly with the offered stream
/// population until capacity admission binds (WAN-crossing sessions start
/// being refused), after which refusals grow instead of load.
pub fn e10_scale() -> Table {
    let mut t = Table::new(
        "e10_scale",
        "macro-workload: mixed voice/bulk/RPC over many LANs + WAN",
        "throughput scales ~linearly with streams until capacity admission binds",
    );
    t.columns(&[
        "streams offered",
        "opened",
        "refused",
        "msgs delivered",
        "voice on-time",
        "events",
        "peak queue",
    ]);
    for scale in [1usize, 2, 4] {
        let mut p = ScaleParams::ci();
        p.record_trace = false;
        p.fault_drill = false;
        p.lans = 4;
        p.hosts_per_lan = 5;
        p.voice_per_lan = 6 * scale;
        p.bulk_per_lan = 2;
        p.rpc_per_lan = 1;
        p.cross_fraction = 0.35;
        p.churn_per_wave = 0;
        let offered = p.lans * (p.voice_per_lan + p.bulk_per_lan);
        let o = run_scale(&p);
        t.row(vec![
            offered.to_string(),
            o.streams_opened.to_string(),
            o.open_failed.to_string(),
            o.messages.to_string(),
            pct(o.voice_on_time),
            o.events.to_string(),
            format!("{} B", f(o.peak_queue_bytes as f64)),
        ]);
    }
    t.note("refusals are WAN admission at work: offered load beyond the long-haul capacity is rejected, not queued");
    t.note("full-size numbers (hundreds of hosts, thousands of streams) live in BENCH_scale.json via the e10_scale binary");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_scale_run_is_deterministic_and_loaded() {
        let p = ScaleParams::ci();
        let a = run_scale(&p);
        assert!(a.streams_opened > 20, "opened {}", a.streams_opened);
        assert!(a.messages > 500, "messages {}", a.messages);
        assert!(a.faults_injected == 4);
        assert!(
            a.cache_misses > 10,
            "churn should create fresh RMSs (misses {})",
            a.cache_misses
        );
        let b = run_scale(&p);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn scale_outcome_json_shape() {
        let mut p = ScaleParams::ci();
        p.record_trace = false;
        p.churn_per_wave = 0;
        p.fault_drill = false;
        p.duration = SimDuration::from_millis(300);
        let o = run_scale(&p);
        let j = o.to_json("test", "ci");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"events_per_sec\""));
        assert!(j.contains("\"config\":\"ci\""));
    }
}
