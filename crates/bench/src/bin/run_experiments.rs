//! Run every experiment (or one, by id) and print its table.
//!
//! ```text
//! cargo run -p dash-bench --release --bin run_experiments            # all
//! cargo run -p dash-bench --release --bin run_experiments e6_admission
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for (id, f) in dash_bench::all_experiments() {
            eprintln!("running {id} ...");
            let t = f();
            println!("{}", t.render());
        }
    } else {
        for id in &args {
            match dash_bench::run_one(id) {
                Some(t) => println!("{}", t.render()),
                None => {
                    eprintln!("unknown experiment: {id}");
                    eprintln!(
                        "known: {}",
                        dash_bench::all_experiments()
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
}
