//! Run the e11 QoS-routing macro-workload and emit its event counts.
//!
//! ```text
//! cargo run -p dash-bench --release --bin e11_routing                 # full size
//! cargo run -p dash-bench --release --bin e11_routing -- --bench     # gate size
//! cargo run -p dash-bench --release --bin e11_routing -- --ci        # CI size
//! cargo run -p dash-bench --release --bin e11_routing -- --json out.json --label after
//! cargo run -p dash-bench --release --bin e11_routing -- --ci --oracle  # semantic-oracle gate
//! ```
//!
//! `--oracle` attaches the dash-check semantic oracle to both topology
//! runs and exits non-zero if any invariant is violated. Keep it out of
//! baseline-compared runs: the oracle's bookkeeping allocates, which
//! would skew `allocs_per_event`.
//!
//! Both topologies (dumbbell-with-backup and the 3×3 mesh) run at the
//! chosen size; the JSON object written with `--json PATH` (or to
//! stdout) nests one sub-object per topology — the shape
//! `BENCH_routing.json` stores and `scripts/check_bench.sh` compares.
//! Human-readable summaries go to stderr.

use dash_bench::alloc_counter::{alloc_count, CountingAlloc};
use dash_bench::e_routing::{run_routing, RoutingParams, RoutingTopo};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = "full";
    let mut label = String::from("run");
    let mut json_path: Option<String> = None;
    let mut oracle = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ci" => config = "ci",
            "--bench" => config = "bench",
            "--full" => config = "full",
            "--oracle" => oracle = true,
            "--label" => {
                i += 1;
                label = args.get(i).cloned().unwrap_or_default();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let base = match config {
        "ci" => RoutingParams::ci(),
        "bench" => RoutingParams::bench(),
        _ => RoutingParams::full(),
    };

    let mut scenario_json = Vec::new();
    let mut total_violations = 0u64;
    for topo in [RoutingTopo::DumbbellBackup, RoutingTopo::Mesh3x3] {
        let mut params = base.clone();
        params.topo = topo;
        params.record_trace = false;
        params.oracle = oracle;
        let name = match topo {
            RoutingTopo::DumbbellBackup => "dumbbell",
            RoutingTopo::Mesh3x3 => "mesh",
        };
        let allocs_before = alloc_count();
        let mut o = run_routing(&params);
        o.allocs = alloc_count() - allocs_before;
        eprintln!(
            "e11_routing [{config}/{name}]: {} hosts, {} events in {:.2} s wall \
             ({:.0} events/s, {:.2} allocs/event), {} opened, {} refused, {} alt wins, \
             {} floods, {} recomputes, {} failovers, {} msgs",
            o.hosts,
            o.events,
            o.wall_secs,
            o.events_per_sec(),
            o.allocs_per_event(),
            o.streams_opened,
            o.open_failed,
            o.alternate_wins,
            o.floods,
            o.recomputes,
            o.recoveries,
            o.messages,
        );
        if o.oracle_violations > 0 {
            eprintln!(
                "e11_routing [{config}/{name}]: ORACLE FAILED — {} violation(s):",
                o.oracle_violations
            );
            for line in &o.oracle_detail {
                eprintln!("  {line}");
            }
        }
        total_violations += o.oracle_violations;
        scenario_json.push(format!("\"{name}\":{}", o.to_json()));
    }
    let json = format!(
        "{{\"label\":\"{label}\",\"config\":\"{config}\",{}}}",
        scenario_json.join(",")
    );
    match json_path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write json");
            eprintln!("e11_routing: wrote {path}");
        }
        None => println!("{json}"),
    }
    if oracle {
        if total_violations > 0 {
            std::process::exit(1);
        }
        eprintln!("e11_routing: oracle clean (0 violations)");
    }
}
