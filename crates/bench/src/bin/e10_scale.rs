//! Run the e10 scale macro-workload and emit throughput numbers.
//!
//! ```text
//! cargo run -p dash-bench --release --bin e10_scale                 # full size
//! cargo run -p dash-bench --release --bin e10_scale -- --bench     # gate size
//! cargo run -p dash-bench --release --bin e10_scale -- --ci        # CI size
//! cargo run -p dash-bench --release --bin e10_scale -- --json out.json --label after
//! cargo run -p dash-bench --release --bin e10_scale -- --ci --oracle  # semantic-oracle gate
//! ```
//!
//! `--oracle` attaches the dash-check semantic oracle to the run and exits
//! non-zero if any invariant is violated. Use it in a separate invocation
//! from baseline-compared runs: the oracle's bookkeeping allocates, which
//! would skew `allocs_per_event`.
//!
//! The human-readable summary goes to stderr; with `--json PATH` one JSON
//! object (the shape `BENCH_scale.json` stores and `check_bench.sh`
//! compares) is written to PATH, otherwise to stdout.

use dash_bench::alloc_counter::{alloc_count, CountingAlloc};
use dash_bench::e_scale::{run_scale, ScaleParams};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = "full";
    let mut label = String::from("run");
    let mut json_path: Option<String> = None;
    let mut oracle = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ci" => config = "ci",
            "--bench" => config = "bench",
            "--full" => config = "full",
            "--oracle" => oracle = true,
            "--label" => {
                i += 1;
                label = args.get(i).cloned().unwrap_or_default();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut params = match config {
        "ci" => ScaleParams::ci(),
        "bench" => ScaleParams::bench(),
        _ => ScaleParams::full(),
    };
    params.record_trace = false;
    params.oracle = oracle;

    eprintln!(
        "e10_scale [{config}]: {} hosts, ~{} long-lived streams, {} s virtual ...",
        params.total_hosts(),
        params.lans * (params.voice_per_lan + params.bulk_per_lan),
        params.duration.as_secs_f64(),
    );
    let allocs_before = alloc_count();
    let mut o = run_scale(&params);
    o.allocs = alloc_count() - allocs_before;
    eprintln!(
        "e10_scale [{config}]: {} events in {:.2} s wall ({:.0} events/s, {:.0} msgs/s, \
         {:.2} allocs/event), {} streams opened, {} refused, {} msgs, peak queue {} B, \
         {} cache misses",
        o.events,
        o.wall_secs,
        o.events_per_sec(),
        o.msgs_per_sec(),
        o.allocs_per_event(),
        o.streams_opened,
        o.open_failed,
        o.messages,
        o.peak_queue_bytes,
        o.cache_misses,
    );
    let json = o.to_json(&label, config);
    match json_path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write json");
            eprintln!("e10_scale: wrote {path}");
        }
        None => println!("{json}"),
    }
    if oracle {
        if o.oracle_violations > 0 {
            eprintln!(
                "e10_scale: ORACLE FAILED — {} violation(s):",
                o.oracle_violations
            );
            for line in &o.oracle_detail {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("e10_scale: oracle clean (0 violations)");
    }
}
