//! Run the e13 macro-workload on the real-time backend and emit its
//! wall-clock numbers.
//!
//! ```text
//! cargo run -p dash-bench --release --bin e13_rt                   # bench size (~2.5 s wall)
//! cargo run -p dash-bench --release --bin e13_rt -- --ci           # CI smoke (~1.5 s wall)
//! cargo run -p dash-bench --release --bin e13_rt -- --loss 20      # 2% best-effort loss
//! cargo run -p dash-bench --release --bin e13_rt -- --json out.json --label after
//! ```
//!
//! The run is *paced*: virtual time maps 1:1 onto the wall clock, so the
//! binary costs about `duration + grace` of real time. Exit is non-zero
//! when the semantic oracle reports any violation or the run hits the
//! wall-clock backstop instead of stopping cleanly — those are the two
//! gate-worthy facts of a real-time run. Event/message counts are *not*
//! deterministic here (real carriage timing feeds back into the
//! schedule); `check_bench.sh` holds them to a generous band against the
//! committed `BENCH_rt.json` baseline.

use dash_bench::e_rt::{run_rt_scale, RtParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = "bench";
    let mut label = String::from("run");
    let mut json_path: Option<String> = None;
    let mut loss: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ci" => config = "ci",
            "--bench" => config = "bench",
            "--loss" => {
                i += 1;
                loss = args.get(i).and_then(|s| s.parse().ok());
                if loss.is_none() {
                    eprintln!("--loss needs a per-mille integer (e.g. 20 = 2%)");
                    std::process::exit(2);
                }
            }
            "--label" => {
                i += 1;
                label = args.get(i).cloned().unwrap_or_default();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut params = match config {
        "ci" => RtParams::ci(),
        _ => RtParams::bench(),
    };
    if let Some(l) = loss {
        params.loss_per_mille = l;
    }
    eprintln!(
        "e13_rt [{config}]: {} hosts, {:.1} s virtual paced onto the wall clock, loss {}‰",
        params.total_hosts(),
        (params.duration.as_nanos() + params.grace.as_nanos()) as f64 / 1e9,
        params.loss_per_mille,
    );

    let o = run_rt_scale(&params);
    eprintln!(
        "e13_rt [{config}]: {} events in {:.2} s wall ({:.2} s virtual), {} msgs \
         ({:.0}/s), {} opened, {} failed, voice on-time {:.1}%, {} rpc, \
         {} misses (rate {:.4}, max lag {:.2} ms), carried {}/{} dropped {}, stop {}",
        o.events,
        o.wall_secs,
        o.sim_secs,
        o.messages,
        o.msgs_per_sec(),
        o.streams_opened,
        o.open_failed,
        o.voice_on_time * 100.0,
        o.rpc_completed,
        o.deadline_misses,
        o.miss_rate(),
        o.max_lag_ms,
        o.injected,
        o.transmitted,
        o.substrate_dropped,
        o.stop,
    );

    let doc = format!(
        "{{\n \"experiment\": \"e13_rt\",\n \"runs\": [\n  {}\n ]\n}}",
        o.to_json(&label, config)
    );
    match json_path {
        Some(path) => {
            std::fs::write(&path, format!("{doc}\n")).expect("write json");
            eprintln!("e13_rt: wrote {path}");
        }
        None => println!("{doc}"),
    }

    if o.oracle_violations > 0 {
        eprintln!(
            "e13_rt: ORACLE FAILED — {} violation(s):",
            o.oracle_violations
        );
        for line in &o.oracle_detail {
            eprintln!("  {line}");
        }
        std::process::exit(1);
    }
    if !o.clean_stop() {
        eprintln!("e13_rt: FAIL — hit the wall-clock backstop with work outstanding");
        std::process::exit(1);
    }
    eprintln!("e13_rt: oracle clean, stop {}", o.stop);
}
