//! Run the e12 parallel-scale macro-workload and emit shard-scaling
//! numbers.
//!
//! ```text
//! cargo run -p dash-bench --release --bin e12_pscale                  # bench scan: 1/2/4/8 shards
//! cargo run -p dash-bench --release --bin e12_pscale -- --ci          # CI scan: 1/2/4 shards
//! cargo run -p dash-bench --release --bin e12_pscale -- --shards 4    # one shard count
//! cargo run -p dash-bench --release --bin e12_pscale -- --json out.json --label after
//! cargo run -p dash-bench --release --bin e12_pscale -- --ci --oracle # semantic oracle on the merged stream
//! ```
//!
//! A scan runs the identical workload at each shard count, asserts the
//! merged determinism digests are byte-identical (exiting non-zero on
//! divergence — this is the executor's core contract), and records the
//! wall-clock speedup of each run relative to the 1-shard run. The JSON
//! document (the shape `BENCH_pscale.json` stores and `check_bench.sh`
//! compares) carries one entry per shard count plus the machine's core
//! count, so perf floors can be applied only where the hardware can
//! express them.

use dash_bench::alloc_counter::{alloc_count, CountingAlloc};
use dash_bench::e_pscale::{run_pscale, PscaleParams};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = "bench";
    let mut label = String::from("run");
    let mut json_path: Option<String> = None;
    let mut oracle = false;
    let mut shards_arg: Option<u32> = None;
    let mut hashed = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ci" => config = "ci",
            "--bench" => config = "bench",
            "--routing-ci" => config = "routing-ci",
            "--oracle" => oracle = true,
            "--hashed" => hashed = true,
            "--shards" => {
                i += 1;
                shards_arg = args.get(i).and_then(|s| s.parse().ok());
                if shards_arg.is_none() {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                }
            }
            "--label" => {
                i += 1;
                label = args.get(i).cloned().unwrap_or_default();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let base = match config {
        "ci" => PscaleParams::ci(),
        "routing-ci" => PscaleParams::routing_ci(),
        _ => PscaleParams::bench(),
    };
    let scan: Vec<u32> = match shards_arg {
        Some(s) => vec![s],
        None if config == "bench" => vec![1, 2, 4, 8],
        None => vec![1, 2, 4],
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "e12_pscale [{config}]: {} hosts (LPs), shards {scan:?}, {cores} cores, {} s virtual",
        base.total_hosts(),
        (base.duration.as_nanos() + base.grace.as_nanos()) as f64 / 1e9,
    );

    let mut entries = Vec::new();
    let mut serial_wall: Option<f64> = None;
    let mut reference: Option<(String, u64)> = None;
    let mut diverged = false;
    for &shards in &scan {
        let mut params = base.clone();
        params.shards = shards;
        params.record_trace = false;
        params.oracle = oracle;
        params.lan_aligned = !hashed;
        let allocs_before = alloc_count();
        let mut o = run_pscale(&params);
        o.allocs = alloc_count() - allocs_before;
        if shards == 1 {
            serial_wall = Some(o.wall_secs);
        }
        o.speedup = match serial_wall {
            Some(s) if o.wall_secs > 0.0 => s / o.wall_secs,
            _ => 0.0,
        };
        let digest = o.determinism_digest();
        match &reference {
            None => reference = Some((digest, o.events)),
            Some((r, ev)) => {
                if *r != digest {
                    eprintln!(
                        "e12_pscale: DIVERGED at {shards} shards — events {} vs {} at {} shards, \
                         digests differ",
                        o.events, ev, scan[0],
                    );
                    diverged = true;
                }
            }
        }
        eprintln!(
            "e12_pscale [{config}] shards={shards}: {} events in {:.2} s wall \
             ({:.0} events/s, speedup {:.2}x, {:.2} allocs/event), {} opened, {} refused, \
             {} msgs, {} rpc, voice on-time {:.1}%, digest {}",
            o.events,
            o.wall_secs,
            o.events_per_sec(),
            o.speedup,
            o.allocs_per_event(),
            o.streams_opened,
            o.open_failed,
            o.messages,
            o.rpc_completed,
            o.voice_on_time() * 100.0,
            o.digest_hash(),
        );
        if oracle && o.oracle_violations > 0 {
            eprintln!(
                "e12_pscale: ORACLE FAILED at {shards} shards — {} violation(s):",
                o.oracle_violations
            );
            for line in &o.oracle_detail {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        entries.push(o.to_json(&label, config));
    }
    let doc = format!(
        "{{\n \"experiment\": \"e12_pscale\",\n \"cores\": {cores},\n \"runs\": [\n  {}\n ]\n}}",
        entries.join(",\n  ")
    );
    match json_path {
        Some(path) => {
            std::fs::write(&path, format!("{doc}\n")).expect("write json");
            eprintln!("e12_pscale: wrote {path}");
        }
        None => println!("{doc}"),
    }
    if diverged {
        eprintln!("e12_pscale: FAIL — shard counts disagree; the parallel executor is broken");
        std::process::exit(1);
    }
    if oracle {
        eprintln!("e12_pscale: oracle clean (0 violations) at every shard count");
    }
    eprintln!("e12_pscale: all shard counts byte-identical");
}
