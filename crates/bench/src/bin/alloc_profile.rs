//! Developer tool: sample allocation backtraces during an e10 bench run.
//!
//! ```text
//! CARGO_PROFILE_RELEASE_DEBUG=1 cargo run --release -p dash-bench --bin alloc_profile
//! ```
//!
//! Every `SAMPLE_EVERY`-th heap allocation captures a backtrace; the top
//! call sites by sampled count are printed at exit. Useful for deciding
//! where allocs-per-event actually comes from before optimizing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dash_bench::e_scale::{run_scale, ScaleParams};

const SAMPLE_EVERY: u64 = 1009; // prime, to avoid phase lock

static COUNT: AtomicU64 = AtomicU64::new(0);
static TRACES: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);

thread_local! {
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

struct SamplingAlloc;

unsafe impl GlobalAlloc for SamplingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = COUNT.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(SAMPLE_EVERY) {
            IN_HOOK.with(|f| {
                if !f.get() {
                    f.set(true);
                    let bt = std::backtrace::Backtrace::force_capture().to_string();
                    let key = summarize(&bt);
                    if let Ok(mut g) = TRACES.lock() {
                        *g.get_or_insert_with(HashMap::new).entry(key).or_insert(0) += 1;
                    }
                    f.set(false);
                }
            });
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: SamplingAlloc = SamplingAlloc;

/// Keep the first few in-crate frames; drop allocator/backtrace noise.
fn summarize(bt: &str) -> String {
    let mut picked = Vec::new();
    for line in bt.lines() {
        let l = line.trim();
        if !l.contains(" at ") && !l.starts_with(char::is_numeric) {
            continue;
        }
        let is_frame = l
            .split_once(": ")
            .map(|(_, f)| f.to_string())
            .unwrap_or_default();
        if is_frame.is_empty() {
            continue;
        }
        if !(is_frame.contains("dash")
            || is_frame.contains("rms_core")
            || is_frame.contains("bytes::"))
        {
            continue;
        }
        picked.push(is_frame);
        if picked.len() == 5 {
            break;
        }
    }
    picked.join(" <- ")
}

fn main() {
    let mut params = ScaleParams::bench();
    params.record_trace = false;
    let o = run_scale(&params);
    eprintln!(
        "alloc_profile: {} events, {} allocs total ({:.2}/event)",
        o.events,
        COUNT.load(Ordering::Relaxed),
        COUNT.load(Ordering::Relaxed) as f64 / o.events as f64,
    );
    let g = TRACES.lock().unwrap();
    if let Some(map) = g.as_ref() {
        let mut v: Vec<_> = map.iter().collect();
        v.sort_by(|a, b| b.1.cmp(a.1));
        for (k, n) in v.iter().take(40) {
            println!("{n:>6}  {k}");
        }
    }
}
