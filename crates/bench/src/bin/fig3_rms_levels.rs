//! Regenerate the Figure 3 per-layer delay-budget table on its own.
//!
//! Every measured latency in the table comes from message lifecycle spans
//! and the metric registry (`dash_sim::obs`): each delivered message
//! carries a span id from the transport send through ST, the interface
//! queue, and the wire to port delivery.
//!
//! ```text
//! cargo run -p dash-bench --release --bin fig3_rms_levels          # table
//! cargo run -p dash-bench --release --bin fig3_rms_levels -- --json
//! ```
//!
//! With `--json` the full metric registry follows the table as JSON Lines
//! (one object per counter/gauge/histogram).

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        let (table, registry) = dash_bench::figs::fig3_rms_levels_json();
        println!("{}", table.render());
        print!("{registry}");
    } else {
        println!("{}", dash_bench::figs::fig3_rms_levels().render());
    }
}
