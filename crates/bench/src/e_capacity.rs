//! e5_capacity — the C/D bandwidth identity (§2.2); e6_admission —
//! deterministic / statistical / best-effort admission control (§2.3).

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use dash_apps::taps::Dispatcher;
use dash_net::ids::{HostId, NetRmsId};
use dash_net::pipeline as netp;
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::TopologyBuilder;
use dash_net::NetworkSpec;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_transport::flow::CapacityEnforcement;
use dash_transport::stack::StackBuilder;
use dash_transport::stream::{self, StreamProfile};
use rms_core::bandwidth::implied_bandwidth;
use rms_core::delay::{DelayBound, DelayBoundKind, StatisticalSpec};
use rms_core::message::Message;
use rms_core::params::{BitErrorRate, RmsParams};
use rms_core::port::DeliveryInfo;
use rms_core::RmsRequest;

use crate::table::{f, pct, secs, Table};

/// e5_capacity — a sender pacing at the RMS rate achieves ~C/D throughput
/// (§2.2's derivation).
pub fn e5_capacity() -> Table {
    let mut t = Table::new(
        "e5_capacity",
        "the capacity/delay bandwidth identity: throughput ≈ C/D",
        "§2.2: sending a message of size M every D·M/C seconds respects the capacity rule and yields ≈ C/D bytes/second",
    );
    t.columns(&[
        "capacity C",
        "period A+C·B",
        "predicted C/(A+C·B)",
        "measured",
        "ratio",
    ]);
    for (capacity, fixed_ms) in [
        (8 * 1024u64, 100u64),
        (8 * 1024, 400),
        (32 * 1024, 100),
        (64 * 1024, 400),
    ] {
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("lan"));
        let ha = b.host_on(n);
        let hb = b.host_on(n);
        let mut sim = Sim::new(StackBuilder::new(b.build()).build());
        let taps = Dispatcher::install(&mut sim, &[ha, hb]);
        let profile = StreamProfile {
            capacity,
            max_message: 1024,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(fixed_ms),
                SimDuration::from_micros(10),
            ),
            enforcement: CapacityEnforcement::RateBased,
            send_port_limit: 4 * capacity,
            ..StreamProfile::default()
        };
        let session = stream::open(&mut sim, ha, hb, profile.clone()).unwrap();
        let bytes = Rc::new(RefCell::new(0u64));
        let b2 = Rc::clone(&bytes);
        taps.register(session, move |_s, ev| {
            if let dash_apps::SessionEvent::Delivered { msg, .. } = ev {
                *b2.borrow_mut() += msg.len() as u64;
            }
        });
        sim.run();
        // Saturate the send port; the rate limiter paces transmission.
        let run_secs = 4.0;
        let t0 = sim.now();
        let end = t0 + SimDuration::from_secs_f64(run_secs);
        while sim.now() < end {
            let _ = stream::send(&mut sim, ha, session, Message::zeroes(1024));
            sim.run_until(sim.now() + SimDuration::from_millis(2));
        }
        sim.run();
        let measured = *bytes.borrow() as f64 / sim.now().saturating_since(t0).as_secs_f64();
        // Rate-based enforcement is the pessimistic §4.4 variant: at most C
        // bytes per A + C·B period, so the sustainable rate is C/(A + C·B).
        let params = RmsParams::builder(capacity, 1024)
            .delay(profile.delay)
            .build()
            .unwrap();
        let period = params.delay.bound_for(capacity);
        let predicted = capacity as f64 / period.as_secs_f64();
        let ideal = implied_bandwidth(&params);
        t.row(vec![
            capacity.to_string(),
            secs(period.as_secs_f64()),
            format!("{} B/s", f(predicted)),
            format!("{} B/s", f(measured)),
            f(measured / predicted),
        ]);
        let _ = ideal;
    }
    t.note("rate-based enforcement over a quiet 10 Mb/s LAN; the wire never limits these rates");
    t.note("§4.4 calls this approach pessimistic: it assumes the maximum delay for all messages, so the sustained rate is C/(A+C·B) ≤ the §2.2 ideal C/D(M)");
    t.note("expected shape: measured ≈ predicted (ratio ≈ 1), scaling with C and 1/period");
    t
}

// ---------------------------------------------------------------------------
// e6: a minimal network-only world for admission experiments
// ---------------------------------------------------------------------------

/// A network-layer-only world for admission experiments (deliveries are
/// counted but discarded).
pub struct NetOnly {
    net: NetState,
    created: Vec<(u64, NetRmsId)>,
    rejected: u64,
}

impl NetWorld for NetOnly {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        _sim: &mut Sim<Self>,
        _host: HostId,
        _rms: NetRmsId,
        _msg: Message,
        _info: DeliveryInfo,
    ) {
    }
    fn rms_event(sim: &mut Sim<Self>, _host: HostId, event: NetRmsEvent) {
        match event {
            NetRmsEvent::Created { token, rms, .. } => sim.state.created.push((token.0, rms)),
            NetRmsEvent::CreateFailed { .. } => sim.state.rejected += 1,
            _ => {}
        }
    }
}

/// e6_admission — deterministic reservation, statistical tests, best-effort
/// always-admit (§2.3), and the resulting deadline behaviour under load.
pub fn e6_admission() -> Table {
    let mut t = Table::new(
        "e6_admission",
        "admission control per delay-bound type, and what load does to deadlines",
        "§2.3: deterministic requests are rejected when worst-case demands exceed free resources; best-effort is never rejected but misses deadlines under overload",
    );
    t.columns(&["kind", "requested", "admitted", "delivered", "late", "lost"]);

    for kind in ["deterministic", "statistical", "best-effort"] {
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("lan"));
        let ha = b.host_on(n);
        let hb = b.host_on(n);
        let mut sim = Sim::new(NetOnly {
            net: b.build(),
            created: Vec::new(),
            rejected: 0,
        });
        // Each stream wants C/D = 16 KB / 0.1 s = 160 KB/s. The Ethernet
        // reserves up to 90% of 1.25 MB/s → 7 deterministic streams fit.
        let requested = 16u64;
        let delay_kind = |k: &str| match k {
            "deterministic" => DelayBoundKind::Deterministic,
            "statistical" => {
                DelayBoundKind::Statistical(StatisticalSpec::new(160_000.0, 2.0, 0.95))
            }
            _ => DelayBoundKind::BestEffort,
        };
        let params = RmsParams {
            reliability: rms_core::Reliability::Unreliable,
            security: rms_core::SecurityParams::NONE,
            capacity: 16 * 1024,
            max_message_size: 1024,
            delay: DelayBound {
                fixed: SimDuration::from_millis(100),
                per_byte: SimDuration::from_micros(2),
                kind: delay_kind(kind),
            },
            error_rate: BitErrorRate::new(1e-4).unwrap(),
        };
        for _ in 0..requested {
            let _ = netp::create_rms(&mut sim, ha, hb, &RmsRequest::exact(params.clone()));
            sim.run();
        }
        let admitted = sim.state.created.len() as u64;
        // Drive every admitted stream at its C/D rate for 2 seconds.
        let streams: Vec<NetRmsId> = sim.state.created.iter().map(|(_, r)| *r).collect();
        let interval = rms_core::bandwidth::send_interval_for(&params, 1024);
        let end = sim.now() + SimDuration::from_secs(2);
        while sim.now() < end {
            for &rms in &streams {
                let deadline = sim.now() + params.delay.bound_for(1024);
                let _ = netp::send_on_rms(
                    &mut sim,
                    ha,
                    rms,
                    Message::zeroes(1024),
                    Some(deadline),
                    None,
                );
            }
            sim.run_until(sim.now() + interval);
        }
        sim.run();
        let (mut delivered, mut late, mut lost) = (0u64, 0u64, 0u64);
        for r in sim.state.net.host(hb).rms.values() {
            delivered += r.stats.delivered.get();
            late += r.stats.late.get();
            lost += r.stats.lost.get();
        }
        t.row(vec![
            kind.into(),
            requested.to_string(),
            admitted.to_string(),
            delivered.to_string(),
            if delivered > 0 {
                pct(late as f64 / delivered as f64)
            } else {
                "-".into()
            },
            lost.to_string(),
        ]);
        let _ = Bytes::new();
    }
    t.note("16 requests of C/D = 160 KB/s each against a 10 Mb/s Ethernet (90% reservable → 7 deterministic fit)");
    t.note("expected shape: deterministic admits ~7 and misses nothing; statistical admits a few more; best-effort admits all 16 and pays with late deliveries");
    t
}

/// Small helper used by unit tests of this module.
pub fn admission_world() -> (Sim<NetOnly>, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let n = b.network(NetworkSpec::ethernet("lan"));
    let ha = b.host_on(n);
    let hb = b.host_on(n);
    (
        Sim::new(NetOnly {
            net: b.build(),
            created: Vec::new(),
            rejected: 0,
        }),
        ha,
        hb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netonly_world_admits_and_rejects() {
        let (mut sim, a, b) = admission_world();
        let params = RmsParams::builder(200_000, 1_000)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(200),
                SimDuration::from_micros(2),
            ))
            .error_rate(BitErrorRate::new(1e-4).unwrap())
            .build()
            .unwrap();
        // ~1 MB/s demand each on a 1.25 MB/s wire: only one fits at 90%.
        let _ = netp::create_rms(&mut sim, a, b, &RmsRequest::exact(params.clone()));
        sim.run();
        let _ = netp::create_rms(&mut sim, a, b, &RmsRequest::exact(params));
        sim.run();
        assert_eq!(sim.state.created.len(), 1);
        assert_eq!(sim.state.rejected, 1);
    }
}
