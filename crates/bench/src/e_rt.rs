//! e13_rt — the macro-workload at wall-clock speed on the real-time
//! backend.
//!
//! Every other experiment runs the stack as a discrete-event simulation:
//! virtual seconds cost whatever the event queue costs. e13 runs a
//! scaled-down e10-style mixed voice/bulk/RKOM population through
//! `dash-rt` instead — the *same* protocol crates, paced by the
//! [`Monotonic`] driver and carried by the threaded [`MemDatagram`]
//! substrate — so a second of traffic takes a second of your life and
//! timer lateness is real, measured lateness.
//!
//! What the numbers mean shifts accordingly. `events` and `messages` are
//! no longer deterministic (real carriage timing feeds back into arrival
//! times), so the regression gate in `scripts/check_bench.sh` holds them
//! to a generous band rather than exact equality, and gates what *is*
//! invariant: the semantic oracle at zero violations and a clean stop
//! (never the wall-clock backstop). Wall-clock speed is reported, never
//! gated — the run is paced, so "throughput" is the workload's offered
//! rate, not the machine's limit.

use std::time::Duration;

use dash_apps::bulk::{start_bulk, BulkStats};
use dash_apps::media::{start_media, MediaSpec, MediaStats};
use dash_apps::rpc::{start_rkom_rpc, RpcSpec, RpcStats};
use dash_apps::taps::Dispatcher;
use dash_net::topology::TopologyBuilder;
use dash_net::{HostId, NetworkSpec};
use dash_rt::{run_rt, MemConfig, MemDatagram, Monotonic, RtOptions, StopReason};
use dash_sim::cpu::SchedPolicy;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_transport::stack::StackBuilder;
use dash_transport::stream::StreamProfile;
use rms_core::delay::DelayBound;

use crate::table::{pct, Table};

/// Knobs for one real-time run. Unlike [`crate::e_scale::ScaleParams`],
/// the outcome is *not* a deterministic function of these: the monotonic
/// driver and the substrate's carrier thread put real scheduling on the
/// critical path by design.
#[derive(Debug, Clone)]
pub struct RtParams {
    /// Edge LANs hanging off the WAN backbone.
    pub lans: usize,
    /// Hosts per LAN (the LAN's gateway is extra).
    pub hosts_per_lan: usize,
    /// Long-lived voice sessions originating per LAN.
    pub voice_per_lan: usize,
    /// Bulk transfers per LAN.
    pub bulk_per_lan: usize,
    /// RPC client/server pairs per LAN (cross-LAN over the WAN).
    pub rpc_per_lan: usize,
    /// Fraction of voice sessions that cross the WAN.
    pub cross_fraction: f64,
    /// Payload of each bulk transfer.
    pub bulk_bytes: u64,
    /// Virtual duration of the run — and, paced 1:1, roughly its wall
    /// duration too.
    pub duration: SimDuration,
    /// Drain grace past `duration` before the horizon cut.
    pub grace: SimDuration,
    /// Seed for placement randomness and the substrate's loss hash.
    pub seed: u64,
    /// Substrate loss applied to best-effort carriage, per mille.
    pub loss_per_mille: u32,
    /// Wall lag beyond which a stepped event counts as a deadline miss.
    pub miss_slack: Duration,
    /// Hard wall box; hitting it is a failure ([`StopReason::WallBox`]).
    pub max_wall: Duration,
}

impl RtParams {
    /// CI smoke size: ~1.5 s of wall time, a dozen streams.
    pub fn ci() -> Self {
        RtParams {
            lans: 2,
            hosts_per_lan: 3,
            voice_per_lan: 2,
            bulk_per_lan: 1,
            rpc_per_lan: 1,
            cross_fraction: 0.25,
            bulk_bytes: 64 * 1024,
            duration: SimDuration::from_secs(1),
            grace: SimDuration::from_millis(500),
            seed: 13,
            loss_per_mille: 0,
            miss_slack: Duration::from_millis(5),
            max_wall: Duration::from_secs(60),
        }
    }

    /// Bench size: ~2.5 s of wall time, a few dozen streams.
    pub fn bench() -> Self {
        RtParams {
            lans: 3,
            hosts_per_lan: 4,
            voice_per_lan: 4,
            bulk_per_lan: 2,
            rpc_per_lan: 2,
            bulk_bytes: 128 * 1024,
            duration: SimDuration::from_secs(2),
            ..RtParams::ci()
        }
    }

    /// Total hosts this topology will have (LAN hosts + gateways).
    pub fn total_hosts(&self) -> usize {
        self.lans * (self.hosts_per_lan + 1)
    }
}

/// Everything a real-time run produces. Wall-clock fields are the point
/// here, not an afterthought; only the oracle verdict and the stop reason
/// are gate-worthy.
#[derive(Debug)]
pub struct RtOutcome {
    /// Hosts in the topology.
    pub hosts: usize,
    /// Sessions opened successfully (voice + bulk).
    pub streams_opened: u64,
    /// Session opens refused or failed outright.
    pub open_failed: u64,
    /// Events stepped by the real-time scheduler.
    pub events: u64,
    /// ST messages delivered to ports (registry `st.deliver`).
    pub messages: u64,
    /// Voice frames delivered on time, as a fraction of frames sent.
    pub voice_on_time: f64,
    /// RPC calls completed.
    pub rpc_completed: u64,
    /// Bulk payload bytes delivered.
    pub bulk_delivered: u64,
    /// Virtual seconds reached.
    pub sim_secs: f64,
    /// Wall seconds the run took (≈ `sim_secs`: the run is paced).
    pub wall_secs: f64,
    /// Events stepped later than the miss slack.
    pub deadline_misses: u64,
    /// Largest wall lag on any stepped event, milliseconds.
    pub max_lag_ms: f64,
    /// Envelopes handed to the substrate.
    pub transmitted: u64,
    /// Envelopes carried to completion and injected.
    pub injected: u64,
    /// Envelopes the substrate dropped (loss model + overflow).
    pub substrate_dropped: u64,
    /// Loss setting the run used, per mille.
    pub loss_per_mille: u32,
    /// Why the run stopped (`"horizon"`, `"quiesced"`, or `"wallbox"`).
    pub stop: &'static str,
    /// Semantic-oracle violations (the gate holds this at zero).
    pub oracle_violations: u64,
    /// Human-readable description of each violation.
    pub oracle_detail: Vec<String>,
}

impl RtOutcome {
    /// Deadline misses as a fraction of stepped events.
    pub fn miss_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.events as f64
        }
    }

    /// Delivered messages per wall second (≈ offered rate: paced run).
    pub fn msgs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.messages as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Whether the run ended the way a healthy run ends.
    pub fn clean_stop(&self) -> bool {
        self.stop != "wallbox"
    }

    /// One-run JSON object for `BENCH_rt.json` / `check_bench.sh`.
    pub fn to_json(&self, label: &str, config: &str) -> String {
        format!(
            "{{\"label\":\"{label}\",\"config\":\"{config}\",\
             \"hosts\":{},\"streams_opened\":{},\"open_failed\":{},\
             \"events\":{},\"messages\":{},\"sim_secs\":{:.3},\
             \"wall_secs\":{:.3},\"msgs_per_sec\":{:.0},\
             \"voice_on_time\":{:.3},\"rpc_completed\":{},\
             \"bulk_delivered\":{},\"deadline_misses\":{},\
             \"miss_rate\":{:.4},\"max_lag_ms\":{:.3},\
             \"transmitted\":{},\"injected\":{},\"substrate_dropped\":{},\
             \"loss_per_mille\":{},\"stop\":\"{}\",\"oracle_violations\":{}}}",
            self.hosts,
            self.streams_opened,
            self.open_failed,
            self.events,
            self.messages,
            self.sim_secs,
            self.wall_secs,
            self.msgs_per_sec(),
            self.voice_on_time,
            self.rpc_completed,
            self.bulk_delivered,
            self.deadline_misses,
            self.miss_rate(),
            self.max_lag_ms,
            self.transmitted,
            self.injected,
            self.substrate_dropped,
            self.loss_per_mille,
            self.stop,
            self.oracle_violations,
        )
    }
}

/// A voice spec whose delay budget survives the WAN path (as in e10).
fn wan_voice(duration: SimDuration) -> MediaSpec {
    let mut spec = MediaSpec::voice(duration);
    spec.delay_budget = SimDuration::from_millis(150);
    spec.profile.delay =
        DelayBound::best_effort_with(SimDuration::from_millis(150), SimDuration::from_micros(10));
    spec
}

/// Build the e10-style topology and population (no churn, no fault
/// drill), then run it on the real-time backend: wall pacing via
/// [`Monotonic`], carriage via [`MemDatagram`].
pub fn run_rt_scale(params: &RtParams) -> RtOutcome {
    let mut rng = dash_sim::rng::Rng::new(params.seed);

    let mut tb = TopologyBuilder::new();
    tb.seed(params.seed ^ 0x5ca1e);
    let wan = tb.network(NetworkSpec::long_haul("wan"));
    let mut lan_hosts: Vec<Vec<HostId>> = Vec::new();
    for l in 0..params.lans {
        let spec = if l % 2 == 1 {
            NetworkSpec::fast_lan(format!("fast-{l}"))
        } else {
            NetworkSpec::ethernet(format!("lan-{l}"))
        };
        let net = tb.network(spec);
        let mut hosts = Vec::new();
        for _ in 0..params.hosts_per_lan {
            hosts.push(tb.host_on(net));
        }
        tb.gateway(net, wan);
        lan_hosts.push(hosts);
    }
    let builder = StackBuilder::new(tb.build())
        .obs(true)
        .cpus(SchedPolicy::Edf, SimDuration::from_micros(5));
    let mut sim = Sim::new(builder.build());

    // Completion off (horizon-cut run), det-delay off (wall lag feeds
    // real carriage timing back into arrival times), FIFO-gap off
    // (unreliable media legitimately skips lost frames).
    let (sink, oracle_handle) = dash_check::oracle(dash_check::OracleConfig {
        check_completion: false,
        check_det_delay: false,
        check_fifo_gaps: false,
    });
    sim.state.net.obs.add_boxed_sink(Box::new(sink));

    let all_hosts: Vec<HostId> = lan_hosts.iter().flatten().copied().collect();
    let taps = Dispatcher::install(&mut sim, &all_hosts);

    let mut voice: Vec<std::rc::Rc<std::cell::RefCell<MediaStats>>> = Vec::new();
    let mut bulk: Vec<std::rc::Rc<std::cell::RefCell<BulkStats>>> = Vec::new();
    let mut rpc: Vec<std::rc::Rc<std::cell::RefCell<RpcStats>>> = Vec::new();
    for l in 0..params.lans {
        for v in 0..params.voice_per_lan {
            let src = lan_hosts[l][v % params.hosts_per_lan];
            let cross = rng.chance(params.cross_fraction);
            let (dst, spec) = if cross && params.lans > 1 {
                let ol = (l + 1 + rng.below(params.lans as u64 - 1) as usize) % params.lans;
                let dst = lan_hosts[ol][rng.below(params.hosts_per_lan as u64) as usize];
                (dst, wan_voice(params.duration))
            } else {
                let mut d = (v + 1 + rng.below(params.hosts_per_lan as u64 - 1) as usize)
                    % params.hosts_per_lan;
                if lan_hosts[l][d] == src {
                    d = (d + 1) % params.hosts_per_lan;
                }
                (lan_hosts[l][d], MediaSpec::voice(params.duration))
            };
            voice.push(start_media(&mut sim, &taps, src, dst, spec, rng.next_u64()));
        }
        for b in 0..params.bulk_per_lan {
            let src = lan_hosts[l][b % params.hosts_per_lan];
            let dst = lan_hosts[l][(b + params.hosts_per_lan / 2) % params.hosts_per_lan];
            bulk.push(start_bulk(
                &mut sim,
                &taps,
                src,
                dst,
                params.bulk_bytes,
                4 * 1024,
                StreamProfile::bulk(),
            ));
        }
        for r in 0..params.rpc_per_lan {
            let client = lan_hosts[l][r % params.hosts_per_lan];
            let server = lan_hosts[(l + 1) % params.lans][r % params.hosts_per_lan];
            let spec = RpcSpec {
                rate: 40.0,
                duration: params.duration,
                ..RpcSpec::default()
            };
            rpc.push(start_rkom_rpc(
                &mut sim,
                client,
                server,
                spec,
                rng.next_u64(),
            ));
        }
    }

    // The real-time leg: every wire hop crosses the substrate from t=0,
    // establishment included (control-plane carriage is lossless by the
    // reliability contract — see `Substrate::transmit`).
    sim.state.net.enable_wire_divert();
    let mut driver = Monotonic::start();
    let mut substrate = MemDatagram::new(MemConfig {
        loss_per_mille: params.loss_per_mille,
        seed: params.seed,
        ..MemConfig::default()
    });
    let horizon = SimTime::ZERO
        .saturating_add(params.duration)
        .saturating_add(params.grace);
    let report = run_rt(
        &mut sim,
        &mut driver,
        &mut substrate,
        &RtOptions {
            horizon: Some(horizon),
            max_wall: Some(params.max_wall),
            miss_slack: params.miss_slack,
            ..RtOptions::default()
        },
    );
    oracle_handle.finish(sim.now());

    let mut streams_opened = 0u64;
    let mut open_failed = 0u64;
    let mut voice_sent = 0u64;
    let mut voice_on_time = 0u64;
    for v in &voice {
        let s = v.borrow();
        if s.failed {
            open_failed += 1;
        } else {
            streams_opened += 1;
        }
        voice_sent += s.sent;
        voice_on_time += s.received.saturating_sub(s.late).min(s.sent);
    }
    let mut bulk_delivered = 0u64;
    for b in &bulk {
        let s = b.borrow();
        if s.failed && s.delivered_bytes == 0 {
            open_failed += 1;
        } else {
            streams_opened += 1;
        }
        bulk_delivered += s.delivered_bytes;
    }
    let rpc_completed: u64 = rpc.iter().map(|r| r.borrow().completed).sum();
    let messages = sim.state.net.obs.registry.counter_value("st.deliver");
    let violations = oracle_handle.violations();

    RtOutcome {
        hosts: params.total_hosts(),
        streams_opened,
        open_failed,
        events: report.events,
        messages,
        voice_on_time: if voice_sent == 0 {
            0.0
        } else {
            voice_on_time as f64 / voice_sent as f64
        },
        rpc_completed,
        bulk_delivered,
        sim_secs: sim.now().as_secs_f64(),
        wall_secs: report.wall.as_secs_f64(),
        deadline_misses: report.deadline_misses,
        max_lag_ms: report.max_lag.as_secs_f64() * 1e3,
        transmitted: report.transmitted,
        injected: report.injected,
        substrate_dropped: report.substrate_dropped,
        loss_per_mille: params.loss_per_mille,
        stop: match report.stop {
            StopReason::Quiesced => "quiesced",
            StopReason::Horizon => "horizon",
            StopReason::WallBox => "wallbox",
        },
        oracle_violations: violations.len() as u64,
        oracle_detail: violations
            .iter()
            .map(|v| format!("[{}] t={} {}", v.invariant, v.at.as_nanos(), v.detail))
            .collect(),
    }
}

/// e13_rt — the stack on wall-clock time.
///
/// Claim: the unchanged protocol stack runs in real time on `dash-rt`
/// with the oracle clean, voice mostly on time, and — with substrate loss
/// injected — drops demonstrably exercised and still zero violations.
pub fn e13_rt() -> Table {
    let mut t = Table::new(
        "e13_rt",
        "macro-workload on the real-time backend (wall pacing + datagram substrate)",
        "the unchanged stack runs at wall-clock speed: oracle clean, lateness measured not hidden",
    );
    t.columns(&[
        "loss",
        "wall s",
        "sim s",
        "msgs",
        "voice on-time",
        "misses",
        "dropped",
        "stop",
        "oracle",
    ]);
    for loss in [0u32, 20] {
        let mut p = RtParams::ci();
        p.loss_per_mille = loss;
        let o = run_rt_scale(&p);
        t.row(vec![
            format!("{:.1}%", loss as f64 / 10.0),
            format!("{:.2}", o.wall_secs),
            format!("{:.2}", o.sim_secs),
            o.messages.to_string(),
            pct(o.voice_on_time),
            o.deadline_misses.to_string(),
            o.substrate_dropped.to_string(),
            o.stop.to_string(),
            if o.oracle_violations == 0 {
                "clean".into()
            } else {
                format!("{} VIOLATIONS", o.oracle_violations)
            },
        ]);
    }
    t.note("wall ≈ sim by construction: the monotonic driver paces events, so this table costs real seconds");
    t.note("loss touches only best-effort carriage (reliability contract); control plane and reliable RMSs cross lossless");
    t.note("regression numbers live in BENCH_rt.json via the e13_rt binary; check_bench.sh gates oracle + stop, bands the counts");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny paced run: clean stop, oracle clean, traffic real. Kept
    /// small — this test costs ~0.7 s of wall time by design.
    #[test]
    fn rt_ci_run_is_clean() {
        let mut p = RtParams::ci();
        p.lans = 2;
        p.hosts_per_lan = 2;
        p.voice_per_lan = 1;
        p.bulk_per_lan = 1;
        p.rpc_per_lan = 1;
        p.bulk_bytes = 16 * 1024;
        p.duration = SimDuration::from_millis(400);
        p.grace = SimDuration::from_millis(200);
        let o = run_rt_scale(&p);
        assert!(o.clean_stop(), "stop {}", o.stop);
        assert_eq!(o.oracle_violations, 0, "{:?}", o.oracle_detail);
        assert!(o.messages > 0, "no traffic delivered");
        assert!(o.transmitted > 0 && o.injected > 0);
        assert!(o.wall_secs >= 0.4, "paced run finished impossibly fast");
        let j = o.to_json("test", "ci");
        assert!(j.contains("\"stop\":\"") && j.contains("\"oracle_violations\":"));
    }
}
