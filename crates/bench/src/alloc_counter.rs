//! A counting global allocator for the macro-workload binaries.
//!
//! The scatter-gather wire path is justified by allocations saved, so the
//! e10/e11 binaries count every heap allocation made during the run and
//! report `allocs_per_event` next to the throughput numbers. The counter
//! wraps [`System`] and only bumps an atomic on the alloc/realloc paths;
//! deallocation is free. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dash_bench::alloc_counter::CountingAlloc = CountingAlloc;
//! ```
//!
//! and read a before/after delta via [`alloc_count`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations observed so far (monotonic; diff two reads).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// [`System`] plus an allocation counter.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the only addition is a
// relaxed atomic increment, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
