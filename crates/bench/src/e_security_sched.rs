//! e1_security — parameter negotiation eliminates redundant security work
//! (§2.5); e2_scheduling — deadline-based scheduling beats FIFO/priority
//! for mixed real-time traffic (§4.1, conclusion).

use dash_apps::bulk::{run_until_complete, start_bulk};
use dash_apps::media::{start_media, MediaSpec};
use dash_apps::rpc::{start_rkom_rpc, RpcSpec};
use dash_apps::taps::Dispatcher;
use dash_net::iface::QueueDiscipline;
use dash_net::state::NetConfig;
use dash_net::topology::TopologyBuilder;
use dash_net::NetworkSpec;
use dash_security::cost::CostModel;
use dash_sim::cpu::SchedPolicy;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use dash_subtransport::st::StConfig;
use dash_transport::stack::StackBuilder;
use dash_transport::stream::StreamProfile;
use rms_core::params::{BitErrorRate, RmsParams, SecurityParams};

use crate::table::{f, pct, secs, Table};

/// e1_security — for each network capability set, which mechanisms does
/// negotiation select, what do they cost, and what throughput results?
pub fn e1_security() -> Table {
    let mut t = Table::new(
        "e1_security",
        "security mechanism selection from RMS parameters × network capabilities",
        "§2.5: 'in any case, the optimal mechanism is used' — trusted or hardware-assisted networks skip software crypto/checksums entirely",
    );
    t.columns(&[
        "network",
        "requested",
        "encrypt",
        "mac",
        "checksum",
        "cpu/KB",
        "goodput",
        "cpu busy",
    ]);

    let make_net = |kind: u8| -> NetworkSpec {
        let mut spec = NetworkSpec::ethernet("lan");
        spec.caps.raw_ber = 1e-6; // noisy enough that integrity needs care
        match kind {
            1 => spec.caps.trusted = true,
            2 => spec.caps.link_encryption = true,
            3 => {
                spec.caps.hardware_checksum = true;
                spec.caps.raw_ber = 1e-12;
            }
            _ => {}
        }
        spec
    };
    let net_name = |kind: u8| match kind {
        1 => "trusted",
        2 => "link-encrypt-hw",
        3 => "hw-checksum",
        _ => "plain",
    };

    for (req_name, security, ber) in [
        ("full security, low BER", SecurityParams::FULL, 1e-9),
        ("no security, lax BER", SecurityParams::NONE, 1e-3),
    ] {
        for kind in 0..4u8 {
            let mut b = TopologyBuilder::new();
            let n = b.network(make_net(kind));
            let ha = b.host_on(n);
            let hb = b.host_on(n);
            let stack = StackBuilder::new(b.build())
                .cpus(SchedPolicy::Edf, SimDuration::from_micros(5))
                .build();
            let mut sim = Sim::new(stack);
            let taps = Dispatcher::install(&mut sim, &[ha, hb]);
            // Transfer 256 KB over a stream whose data RMS requests the
            // security/BER combination under test.
            let profile = StreamProfile {
                max_message: 1024,
                capacity: 64 * 1024,
                ..StreamProfile::default()
            };
            let stats = start_bulk(&mut sim, &taps, ha, hb, 256 * 1024, 1024, profile);
            // Patch the data RMS's security by requesting it at the ST
            // level: the stream profile has no security knob, so we instead
            // verify the mechanism-selection function directly and measure
            // the stack with the plan that negotiation would install.
            let params = RmsParams::builder(64 * 1024, 1024)
                .security(security)
                .error_rate(BitErrorRate::new(ber).expect("valid"))
                .build()
                .expect("valid params");
            let caps = make_net(kind).caps;
            let (plan, _) = dash_security::suite::select_mechanisms(&params, &caps);
            let done = run_until_complete(&mut sim, &stats, SimDuration::from_secs(20));
            sim.run();
            let goodput = if done {
                stats.borrow().goodput().unwrap_or(0.0)
            } else {
                0.0
            };
            let busy: f64 = sim
                .state
                .cpus
                .as_ref()
                .unwrap()
                .iter()
                .map(|c| c.stats.busy.as_secs_f64())
                .sum();
            let cost = plan.cost().cost_for(1024).as_nanos() as f64 / 1000.0;
            t.row(vec![
                net_name(kind).into(),
                req_name.into(),
                plan.encrypt.to_string(),
                plan.mac.to_string(),
                plan.checksum
                    .map(|a| format!("{a:?}"))
                    .unwrap_or("-".into()),
                format!("{}us", f(cost)),
                format!("{} B/s", f(goodput)),
                secs(busy),
            ]);
        }
    }
    t.note("mechanism columns come from §2.5's selection procedure; cpu/KB is the modelled cost of the selected plan");
    t.note("expected shape: trusted/hw rows select no software mechanisms (cpu/KB = 0) at equal-or-better goodput");
    t
}

/// e2_scheduling — EDF vs FIFO vs static priority under mixed load (§4.1).
pub fn e2_scheduling() -> Table {
    let mut t = Table::new(
        "e2_scheduling",
        "deadline-based CPU + interface scheduling vs FIFO and priorities",
        "§4.1/§5: deadlines let low-delay traffic overtake bulk work; FIFO and priorities miss real-time deadlines",
    );
    t.columns(&[
        "cpu policy",
        "iface queue",
        "voice on-time",
        "voice p99",
        "rpc mean",
        "bulk goodput",
    ]);
    for (cpu_name, policy, disc_name, discipline) in [
        (
            "edf",
            SchedPolicy::Edf,
            "deadline",
            QueueDiscipline::Deadline,
        ),
        ("fifo", SchedPolicy::Fifo, "fifo", QueueDiscipline::Fifo),
        (
            "priority",
            SchedPolicy::Priority,
            "fifo",
            QueueDiscipline::Fifo,
        ),
    ] {
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("lan"));
        let ha = b.host_on(n);
        let hb = b.host_on(n);
        let net_config = NetConfig {
            discipline,
            // Make protocol processing expensive enough that CPU scheduling
            // matters: 40 us fixed + 150 ns/byte per packet (the CPU, not
            // the wire, is the contended resource, as in §4.1's
            // protocol-process scheduling discussion).
            per_packet_cpu: CostModel::new(
                SimDuration::from_micros(40),
                SimDuration::from_nanos(150),
            ),
            ..NetConfig::default()
        };
        b.config(net_config);
        let st_config = StConfig {
            st_cpu: CostModel::new(SimDuration::from_micros(40), SimDuration::from_nanos(150)),
            ..StConfig::default()
        };
        let stack = StackBuilder::new(b.build())
            .st_config(st_config)
            .cpus(policy, SimDuration::from_micros(10))
            .build();
        let mut sim = Sim::new(stack);
        let taps = Dispatcher::install(&mut sim, &[ha, hb]);

        // Competing workloads on the same host pair.
        let voice = start_media(
            &mut sim,
            &taps,
            ha,
            hb,
            MediaSpec::voice(SimDuration::from_secs(2)),
            5,
        );
        let bulk = start_bulk(
            &mut sim,
            &taps,
            ha,
            hb,
            768 * 1024,
            8 * 1024,
            StreamProfile::bulk(),
        );
        let rpc = start_rkom_rpc(
            &mut sim,
            ha,
            hb,
            RpcSpec {
                rate: 50.0,
                duration: SimDuration::from_secs(2),
                ..RpcSpec::default()
            },
            9,
        );
        let _ = run_until_complete(&mut sim, &bulk, SimDuration::from_secs(3));
        // Bounded drain: under deliberate CPU overload the backlog can
        // outlive the workloads, so cap the tail.
        sim.run_until(sim.now() + SimDuration::from_millis(500));
        let v = voice.borrow();
        let mut vd = v.delays.clone();
        let bulk_goodput = bulk.borrow().goodput().unwrap_or_else(|| {
            let s = bulk.borrow();
            s.delivered_bytes as f64 / 3.0
        });
        let r = rpc.borrow();
        t.row(vec![
            cpu_name.into(),
            disc_name.into(),
            pct(v.on_time_fraction()),
            secs(vd.quantile(0.99)),
            secs(r.latency.mean()),
            format!("{} B/s", f(bulk_goodput)),
        ]);
    }
    t.note("voice budget 40 ms; per-packet CPU cost inflated to 40 us + 150 ns/B so scheduling policy dominates");
    t.note("static priority collapses to FIFO here because all protocol jobs share one priority class — the paper's point that priorities alone cannot express per-message deadlines (§5)");
    t.note("expected shape: EDF+deadline keeps voice on time (bulk yields under overload, as its deadlines are loose); FIFO/priority miss voice deadlines without helping anything else");
    t
}
