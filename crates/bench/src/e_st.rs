//! Subtransport experiments: e3_caching (network-RMS caching, §4.2),
//! e4_fragmentation (maximum message size trade-off, §4.3), and
//! e9_piggyback (the §4.3.1 queueing policy).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dash_apps::taps::Dispatcher;
use dash_net::topology::TopologyBuilder;
use dash_net::NetworkSpec;
use dash_sim::cpu::SchedPolicy;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use dash_subtransport::engine as st_engine;
use dash_subtransport::st::{StConfig, StEvent};
use dash_transport::stack::{AppEvent, StackBuilder};
use dash_transport::stream::{self, StreamProfile};
use rms_core::delay::DelayBound;
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::RmsRequest;

use crate::table::{f, pct, secs, Table};

/// e3_caching — creating network RMSs is costly; the ST caches them (§4.2).
pub fn e3_caching() -> Table {
    let mut t = Table::new(
        "e3_caching",
        "network-RMS caching across ST RMS create/close cycles",
        "§4.2: hosts communicate repeatedly with a small peer set and network-RMS creation is slow, so caching pays",
    );
    t.columns(&[
        "cache",
        "creates",
        "net RMS created",
        "cache hits",
        "evictions",
        "mean create latency",
        "p99 create latency",
    ]);
    for (label, idle_limit) in [("on (limit 4)", 4usize), ("off (limit 0)", 0usize)] {
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("lan"));
        let client = b.host_on(n);
        let peers: Vec<_> = (0..3).map(|_| b.host_on(n)).collect();
        let config = StConfig {
            cache_idle_limit: idle_limit,
            ..StConfig::default()
        };
        let mut sim = Sim::new(
            StackBuilder::new(b.build())
                .st_config(config)
                .obs(true)
                .build(),
        );

        // Track creation latency through the app tap (tokens of direct ST
        // creates are unclaimed by transports and reach the tap).
        let pending: Rc<RefCell<HashMap<u64, SimTime>>> = Rc::new(RefCell::new(HashMap::new()));
        let latencies: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let created: Rc<RefCell<Vec<(u64, dash_subtransport::ids::StRmsId)>>> =
            Rc::new(RefCell::new(Vec::new()));
        {
            let pending = Rc::clone(&pending);
            let latencies = Rc::clone(&latencies);
            let created = Rc::clone(&created);
            sim.state.on_app(move |sim, ev| {
                if let AppEvent::StEvent {
                    event: StEvent::Created { token, st_rms, .. },
                    ..
                } = ev
                {
                    if let Some(t0) = pending.borrow_mut().remove(&token.0) {
                        latencies
                            .borrow_mut()
                            .push(sim.now().saturating_since(t0).as_secs_f64());
                    }
                    created.borrow_mut().push((token.0, st_rms));
                }
            });
        }

        // 36 create/close cycles over 3 peers, round-robin.
        let request = RmsRequest::exact(RmsParams::builder(8 * 1024, 1024).build().unwrap());
        let n_creates = 36u64;
        for i in 0..n_creates {
            let peer = peers[(i % 3) as usize];
            let before = created.borrow().len();
            let token = st_engine::create(&mut sim, client, peer, &request, false).unwrap();
            pending.borrow_mut().insert(token.0, sim.now());
            sim.run();
            // Close the stream we just created.
            let new: Vec<_> = created.borrow()[before..].to_vec();
            for (_, st_rms) in new {
                let _ = st_engine::close(&mut sim, client, st_rms);
            }
            sim.run();
        }
        let reg = &sim.state.net.obs.registry;
        let mut l = dash_sim::stats::Histogram::new();
        for x in latencies.borrow().iter() {
            l.record(*x);
        }
        t.row(vec![
            label.into(),
            n_creates.to_string(),
            reg.counter_value("st.cache_miss").to_string(),
            reg.counter_value("st.cache_hit").to_string(),
            reg.counter_value("st.cache_eviction").to_string(),
            secs(l.mean()),
            secs(l.quantile(0.99)),
        ]);
    }
    t.note("3 peers, 36 sequential ST RMS create/close cycles");
    t.note("expected shape: caching turns repeat creates into cache hits, cutting mean latency and network-RMS churn");
    t
}

/// e4_fragmentation — the ST's maximum-message-size trade-off (§4.3):
/// bigger ST messages amortize context switches but a single lost fragment
/// kills the whole message.
pub fn e4_fragmentation() -> Table {
    let mut t = Table::new(
        "e4_fragmentation",
        "goodput vs ST maximum message size on a lossy network with context-switch costs",
        "§4.3: a somewhat larger ST message than the network's reduces context switching, but loss and fairness cap how far to push it",
    );
    t.columns(&[
        "st msg size",
        "frags/msg",
        "msgs sent",
        "delivered",
        "delivery rate",
        "goodput",
        "cpu busy",
    ]);
    for msg_size in [512u64, 1024, 2048, 4096, 8192, 16 * 1024, 32 * 1024] {
        let mut b = TopologyBuilder::new();
        let mut spec = NetworkSpec::ethernet("lossy");
        spec.caps.raw_ber = 4e-7; // per-fragment corruption ~0.5%
        spec.drop_prob = 2e-3;
        let n = b.network(spec);
        let ha = b.host_on(n);
        let hb = b.host_on(n);
        // Heavy context switches make small messages expensive.
        let stack = StackBuilder::new(b.build())
            .cpus(SchedPolicy::Edf, SimDuration::from_micros(100))
            .obs(true)
            .build();
        let mut sim = Sim::new(stack);
        let taps = Dispatcher::install(&mut sim, &[ha, hb]);
        let profile = StreamProfile {
            max_message: msg_size,
            capacity: (4 * msg_size).max(32 * 1024),
            // Checksums on: corrupted fragments become losses.
            reliable: false,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(200),
                SimDuration::from_micros(10),
            ),
            ..StreamProfile::default()
        };
        let session = stream::open(&mut sim, ha, hb, profile).unwrap();
        let delivered = Rc::new(RefCell::new((0u64, 0u64))); // (msgs, bytes)
        let d2 = Rc::clone(&delivered);
        taps.register(session, move |_s, ev| {
            if let dash_apps::SessionEvent::Delivered { msg, .. } = ev {
                let mut d = d2.borrow_mut();
                d.0 += 1;
                d.1 += msg.len() as u64;
            }
        });
        sim.run();
        let total_bytes = 1024 * 1024u64;
        let n_msgs = total_bytes / msg_size;
        let t0 = sim.now();
        for _ in 0..n_msgs {
            let _ = stream::send(&mut sim, ha, session, Message::zeroes(msg_size as usize));
            // Pace at ~6 Mb/s offered so the wire is not the bottleneck.
            sim.run_until(sim.now() + SimDuration::from_secs_f64(msg_size as f64 * 8.0 / 6e6));
        }
        sim.run();
        let elapsed = sim.now().saturating_since(t0).as_secs_f64();
        let (msgs, bytes) = *delivered.borrow();
        let frags = {
            let reg = &sim.state.net.obs.registry;
            let fragmented = reg.counter_value("st.msg_fragmented");
            if fragmented > 0 {
                reg.counter_value("st.fragment_sent") as f64 / fragmented as f64
            } else {
                1.0
            }
        };
        let busy: f64 = sim
            .state
            .cpus
            .as_ref()
            .unwrap()
            .iter()
            .map(|c| c.stats.busy.as_secs_f64())
            .sum();
        t.row(vec![
            msg_size.to_string(),
            f(frags),
            n_msgs.to_string(),
            msgs.to_string(),
            pct(msgs as f64 / n_msgs as f64),
            format!("{} B/s", f(bytes as f64 / elapsed)),
            secs(busy),
        ]);
    }
    t.note("1 MB offered at ~6 Mb/s over a lossy Ethernet (BER 4e-7, drop 0.2%), context switch 100 us, unreliable stream");
    t.note("expected shape: goodput rises with message size (fewer context switches), then falls as whole-message loss dominates — an interior optimum");
    t
}

/// e9_piggyback — the §4.3.1 piggybacking policy: ordering and deadlines
/// preserved, overhead reduced, with the queueing-slack knob.
pub fn e9_piggyback() -> Table {
    let mut t = Table::new(
        "e9_piggyback",
        "piggyback policy: slack vs bundling vs delay, with ordering checks",
        "§4.3.1: the policy maximizes piggybacking while ensuring correct ordering and honouring deadlines",
    );
    t.columns(&[
        "policy",
        "slack",
        "net msgs",
        "bundled msgs",
        "bundling",
        "mean delay",
        "order ok",
        "late",
    ]);
    for (label, piggyback, slack_ms) in [
        ("off", false, 0u64),
        ("on", true, 1),
        ("on", true, 4),
        ("on", true, 16),
    ] {
        let config = StConfig {
            piggyback,
            piggyback_slack: SimDuration::from_millis(slack_ms),
            ..StConfig::default()
        };
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("lan"));
        let ha = b.host_on(n);
        let hb = b.host_on(n);
        let mut sim = Sim::new(
            StackBuilder::new(b.build())
                .st_config(config)
                .obs(true)
                .build(),
        );
        let taps = Dispatcher::install(&mut sim, &[ha, hb]);
        let profile = StreamProfile {
            capacity: 8 * 1024,
            max_message: 128,
            delay: DelayBound::best_effort_with(
                SimDuration::from_millis(60),
                SimDuration::from_micros(10),
            ),
            ..StreamProfile::default()
        };
        let sessions: Vec<u64> = (0..4)
            .map(|_| stream::open(&mut sim, ha, hb, profile.clone()).unwrap())
            .collect();
        let order_ok = Rc::new(RefCell::new(true));
        let delays = Rc::new(RefCell::new(Vec::new()));
        let last_seq: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        for &s in &sessions {
            let ok = Rc::clone(&order_ok);
            let d2 = Rc::clone(&delays);
            let ls = Rc::clone(&last_seq);
            taps.register(s, move |_sim, ev| {
                if let dash_apps::SessionEvent::Delivered { seq, delay, .. } = ev {
                    let mut m = ls.borrow_mut();
                    if let Some(prev) = m.get(&s) {
                        if seq <= *prev {
                            *ok.borrow_mut() = false;
                        }
                    }
                    m.insert(s, seq);
                    d2.borrow_mut().push(delay.as_secs_f64());
                }
            });
        }
        sim.run();
        let base = sim.state.net.obs.registry.counter_value("st.net_msg_sent");
        let n_msgs = 400usize;
        let mut rng = dash_sim::rng::Rng::new(77);
        for i in 0..n_msgs {
            let s = sessions[i % sessions.len()];
            let _ = stream::send(&mut sim, ha, s, Message::zeroes(64));
            let gap = rng.exp(0.0005); // mean 500 us
            sim.run_until(sim.now() + SimDuration::from_secs_f64(gap));
        }
        sim.run();
        let reg = &sim.state.net.obs.registry;
        let net_msgs = reg.counter_value("st.net_msg_sent") - base;
        let bundled = reg.counter_value("st.msg_bundled");
        // Late deliveries per receiving stream: the registry keys them as
        // "st.late.<st_rms>", so sum every per-stream counter.
        let late: u64 = reg
            .counters()
            .filter(|(name, _)| name.starts_with("st.late."))
            .map(|(_, v)| v)
            .sum();
        let ds = delays.borrow();
        let mean = ds.iter().sum::<f64>() / ds.len().max(1) as f64;
        t.row(vec![
            label.into(),
            format!("{slack_ms}ms"),
            net_msgs.to_string(),
            bundled.to_string(),
            pct(bundled as f64 / n_msgs as f64),
            secs(mean),
            order_ok.borrow().to_string(),
            late.to_string(),
        ]);
    }
    t.note("4 ST RMSs on one network RMS, 400 × 64 B messages, Poisson 500 us gaps");
    t.note("expected shape: more slack → more bundling and fewer net msgs, delay grows by ≤ slack, ordering always holds, no late deliveries");
    t
}
