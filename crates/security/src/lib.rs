//! # dash-security — integrity and secrecy mechanisms with cost models
//!
//! The paper's security story (§2.1, §2.5) is that privacy, authentication
//! and integrity are *negotiated RMS parameters*, and the provider selects
//! the cheapest mechanism that satisfies them — including no mechanism at
//! all when the network is trusted or has hardware support. This crate
//! supplies:
//!
//! - [`checksum`]: Internet / Fletcher-32 / CRC-32 with detection-strength
//!   estimates.
//! - [`cipher`]: a simulated stream cipher (real byte transformation,
//!   simulated strength — see the module docs).
//! - [`mac`]: simulated message authentication tags.
//! - [`cost`]: affine CPU cost models for each mechanism.
//! - [`suite`]: [`suite::select_mechanisms`], the §2.5 decision procedure
//!   mapping (RMS parameters × network capabilities) to the cheapest
//!   sufficient [`suite::MechanismPlan`].
//!
//! ```
//! use dash_security::suite::{select_mechanisms, NetworkCapabilities};
//! use rms_core::params::{BitErrorRate, RmsParams, SecurityParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = RmsParams::builder(10_000, 1_000)
//!     .security(SecurityParams::FULL)
//!     .error_rate(BitErrorRate::new(1e-6).expect("valid"))
//!     .build()?;
//! // On a trusted network, full security costs nothing.
//! let trusted = NetworkCapabilities { trusted: true, ..Default::default() };
//! let (plan, _) = select_mechanisms(&params, &trusted);
//! assert!(!plan.encrypt && !plan.mac);
//! # Ok(())
//! # }
//! ```

pub mod checksum;
pub mod cipher;
pub mod cost;
pub mod mac;
pub mod suite;

pub use checksum::Algorithm;
pub use cipher::Key;
pub use cost::CostModel;
pub use suite::{select_mechanisms, MechanismPlan, NetworkCapabilities};
