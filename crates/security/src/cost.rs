//! CPU cost models for security mechanisms.
//!
//! The e1 experiment measures how much work RMS parameter negotiation
//! saves. That requires an explicit model of what each mechanism costs the
//! host CPU; these affine `fixed + per_byte·len` models are calibrated to
//! the rough relative costs of the real algorithms (a CRC costs more than
//! an Internet checksum; a software cipher costs several times a CRC).

use dash_sim::time::SimDuration;

use crate::checksum::Algorithm;

/// An affine CPU cost: `fixed + per_byte · len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed per-invocation overhead.
    pub fixed: SimDuration,
    /// Marginal cost per payload byte.
    pub per_byte: SimDuration,
}

impl CostModel {
    /// A zero-cost model (hardware offload or mechanism skipped).
    pub const FREE: CostModel = CostModel {
        fixed: SimDuration::ZERO,
        per_byte: SimDuration::ZERO,
    };

    /// Construct a model.
    pub const fn new(fixed: SimDuration, per_byte: SimDuration) -> Self {
        CostModel { fixed, per_byte }
    }

    /// The CPU time to process `len` bytes.
    pub fn cost_for(&self, len: u64) -> SimDuration {
        self.fixed.saturating_add(self.per_byte.saturating_mul(len))
    }

    /// Sum of two models (mechanisms applied back to back).
    pub fn plus(&self, other: CostModel) -> CostModel {
        CostModel {
            fixed: self.fixed.saturating_add(other.fixed),
            per_byte: self.per_byte.saturating_add(other.per_byte),
        }
    }
}

/// Default cost of the software stream cipher (per direction).
pub fn cipher_cost() -> CostModel {
    CostModel::new(SimDuration::from_nanos(500), SimDuration::from_nanos(50))
}

/// Default cost of computing or verifying a MAC.
pub fn mac_cost() -> CostModel {
    CostModel::new(SimDuration::from_nanos(300), SimDuration::from_nanos(15))
}

/// Default cost of a checksum algorithm.
pub fn checksum_cost(alg: Algorithm) -> CostModel {
    match alg {
        Algorithm::Internet => {
            CostModel::new(SimDuration::from_nanos(100), SimDuration::from_nanos(2))
        }
        Algorithm::Fletcher32 => {
            CostModel::new(SimDuration::from_nanos(120), SimDuration::from_nanos(4))
        }
        Algorithm::Crc32 => {
            CostModel::new(SimDuration::from_nanos(150), SimDuration::from_nanos(8))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_cost() {
        let m = CostModel::new(SimDuration::from_nanos(100), SimDuration::from_nanos(2));
        assert_eq!(m.cost_for(0), SimDuration::from_nanos(100));
        assert_eq!(m.cost_for(1000), SimDuration::from_nanos(2100));
    }

    #[test]
    fn free_is_zero() {
        assert_eq!(CostModel::FREE.cost_for(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn plus_sums_components() {
        let a = CostModel::new(SimDuration::from_nanos(10), SimDuration::from_nanos(1));
        let b = CostModel::new(SimDuration::from_nanos(20), SimDuration::from_nanos(3));
        let c = a.plus(b);
        assert_eq!(c.cost_for(10), SimDuration::from_nanos(30 + 40));
    }

    #[test]
    fn relative_costs_ordered() {
        let n = 1500;
        let internet = checksum_cost(Algorithm::Internet).cost_for(n);
        let fletcher = checksum_cost(Algorithm::Fletcher32).cost_for(n);
        let crc = checksum_cost(Algorithm::Crc32).cost_for(n);
        let cipher = cipher_cost().cost_for(n);
        assert!(internet < fletcher && fletcher < crc && crc < cipher);
    }
}
