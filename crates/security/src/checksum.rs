//! Data-integrity checksums.
//!
//! The paper's point (§2.5) is that *which* checksum runs, and *where*, is
//! decided from RMS parameters: a network with hardware link-level
//! checksumming lets software skip the work entirely. We implement three
//! software algorithms with different cost/strength trade-offs, all
//! self-contained:
//!
//! - [`Algorithm::Internet`]: the RFC 1071 ones-complement sum (cheap,
//!   weak).
//! - [`Algorithm::Fletcher32`]: Fletcher's checksum (moderate).
//! - [`Algorithm::Crc32`]: CRC-32 (IEEE 802.3 polynomial, table-driven;
//!   strongest, most expensive).

/// Available checksum algorithms, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// RFC 1071 16-bit ones-complement sum.
    Internet,
    /// Fletcher-32.
    Fletcher32,
    /// CRC-32 (IEEE).
    Crc32,
}

impl Algorithm {
    /// All algorithms, cheapest first.
    pub const ALL: [Algorithm; 3] = [Algorithm::Internet, Algorithm::Fletcher32, Algorithm::Crc32];

    /// Compute the checksum of `data` as a 32-bit value (the Internet sum
    /// occupies the low 16 bits).
    pub fn compute(self, data: &[u8]) -> u32 {
        match self {
            Algorithm::Internet => internet_checksum(data) as u32,
            Algorithm::Fletcher32 => fletcher32(data),
            Algorithm::Crc32 => crc32(data),
        }
    }

    /// Verify `data` against a previously computed checksum.
    pub fn verify(self, data: &[u8], checksum: u32) -> bool {
        self.compute(data) == checksum
    }

    /// Approximate probability that a random corruption goes undetected —
    /// used when deriving the *effective* bit error rate a provider can
    /// guarantee (§2.2: the error rate "reflects ... the effectiveness of
    /// the checksumming algorithm").
    pub fn undetected_error_probability(self) -> f64 {
        match self {
            Algorithm::Internet => 1.0 / 65_536.0,
            Algorithm::Fletcher32 => 1.0 / 4.29e9 * 16.0, // weaker than CRC for burst errors
            Algorithm::Crc32 => 1.0 / 4.29e9,
        }
    }
}

/// RFC 1071 ones-complement 16-bit checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Fletcher-32 checksum over bytes (word size 16, blocked to avoid
/// overflow).
pub fn fletcher32(data: &[u8]) -> u32 {
    let mut c0: u32 = 0;
    let mut c1: u32 = 0;
    // Process 16-bit words; odd trailing byte padded with zero.
    let mut words: Vec<u16> = data
        .chunks(2)
        .map(|c| u16::from_be_bytes([c[0], *c.get(1).unwrap_or(&0)]))
        .collect();
    if words.is_empty() {
        words.push(0);
    }
    for block in words.chunks(359) {
        for &w in block {
            c0 += u32::from(w);
            c1 += c0;
        }
        c0 %= 65_535;
        c1 %= 65_535;
    }
    (c1 << 16) | c0
}

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet_checksum_known_vector() {
        // Classic RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
        // checksum = !ddf2 = 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn internet_checksum_odd_length() {
        let even = internet_checksum(&[0xab, 0x00]);
        let odd = internet_checksum(&[0xab]);
        assert_eq!(even, odd);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn fletcher32_known_vectors() {
        // Reference values for big-endian 16-bit word grouping.
        let a = fletcher32(b"abcde");
        let b = fletcher32(b"abcdef");
        assert_ne!(a, b);
        // Odd inputs are zero-padded to a word: "abc" and "abc\0" collide by
        // construction, but content changes always show.
        assert_eq!(fletcher32(b"abc"), fletcher32(b"abc\0"));
        assert_ne!(fletcher32(b"ab"), fletcher32(b"ac"));
    }

    #[test]
    fn all_detect_single_bit_flip() {
        let data: Vec<u8> = (0..=255).collect();
        for alg in Algorithm::ALL {
            let sum = alg.compute(&data);
            assert!(alg.verify(&data, sum));
            for byte in [0usize, 17, 255] {
                for bit in [0, 3, 7] {
                    let mut corrupted = data.clone();
                    corrupted[byte] ^= 1 << bit;
                    assert!(
                        !alg.verify(&corrupted, sum),
                        "{alg:?} missed flip at {byte}:{bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn strength_ordering() {
        assert!(
            Algorithm::Crc32.undetected_error_probability()
                < Algorithm::Fletcher32.undetected_error_probability()
        );
        assert!(
            Algorithm::Fletcher32.undetected_error_probability()
                < Algorithm::Internet.undetected_error_probability()
        );
    }
}
