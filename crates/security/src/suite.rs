//! Security mechanism selection (paper §2.5).
//!
//! "To see the importance of RMS parameters, consider the case of a client
//! ... that requires data privacy. ... Depending on the network, the
//! following situations are possible: (1) privacy is provided by data
//! encryption in the subtransport layer; (2) the network has link-level
//! encryption hardware; the subtransport layer learns this ... and does no
//! data encryption; (3) the network is considered secure, so no data
//! encryption is done. In any case, the optimal mechanism is used. ... A
//! similar situation exists for data integrity."
//!
//! [`select_mechanisms`] is that decision procedure: given the negotiated
//! RMS parameters and the capabilities of the underlying network, it
//! returns the cheapest [`MechanismPlan`] that still meets the guarantees.

use rms_core::params::{Authentication, BitErrorRate, Privacy, RmsParams};

use crate::checksum::Algorithm;
use crate::cost::{checksum_cost, cipher_cost, mac_cost, CostModel};

/// Security-relevant capabilities of an underlying network (paper §3.1's
/// network-object parameters plus integrity hardware).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetworkCapabilities {
    /// All hosts on the network are trusted (§3.1): neither eavesdropping
    /// nor impersonation is a concern inside it.
    pub trusted: bool,
    /// Link-level encryption hardware encrypts every frame.
    pub link_encryption: bool,
    /// The interface hardware checksums frames; its residual error rate is
    /// the network's raw bit error rate below.
    pub hardware_checksum: bool,
    /// "Physical broadcast property": an eavesdropper can only receive a
    /// message if the intended recipient also does (§3.1). Enables
    /// detection-based schemes; advisory here.
    pub physical_broadcast: bool,
    /// Raw bit error rate of the medium after any hardware checksumming.
    pub raw_ber: f64,
}

/// The software mechanisms the subtransport layer must apply on one RMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MechanismPlan {
    /// Encrypt payloads in software at the ST level.
    pub encrypt: bool,
    /// Compute/verify a MAC to authenticate the source label.
    pub mac: bool,
    /// Software checksum to run, if any.
    pub checksum: Option<Algorithm>,
}

impl MechanismPlan {
    /// No software mechanisms at all.
    pub const NONE: MechanismPlan = MechanismPlan {
        encrypt: false,
        mac: false,
        checksum: None,
    };

    /// The per-message CPU cost model of this plan (one side; the same
    /// model applies on send and on receive).
    pub fn cost(&self) -> CostModel {
        let mut c = CostModel::FREE;
        if self.encrypt {
            c = c.plus(cipher_cost());
        }
        if self.mac {
            c = c.plus(mac_cost());
        }
        if let Some(alg) = self.checksum {
            c = c.plus(checksum_cost(alg));
        }
        c
    }

    /// Bytes of header overhead this plan adds to each message (tag and
    /// checksum fields).
    pub fn header_overhead(&self) -> u64 {
        let mut n = 0;
        if self.mac {
            n += 8;
        }
        if self.checksum.is_some() {
            n += 4;
        }
        n
    }
}

/// Choose the cheapest software mechanisms that realize `params` over a
/// network with `caps` (§2.5). Also returns the *effective* bit error rate
/// the combination can guarantee.
pub fn select_mechanisms(
    params: &RmsParams,
    caps: &NetworkCapabilities,
) -> (MechanismPlan, BitErrorRate) {
    let mut plan = MechanismPlan::NONE;

    // Privacy (§2.5 cases 1–3).
    if params.security.privacy == Privacy::Private && !caps.trusted && !caps.link_encryption {
        plan.encrypt = true;
    }

    // Authentication: a trusted network cannot contain impersonators; link
    // encryption keyed per host-pair also authenticates the source.
    if params.security.authentication == Authentication::Authenticated
        && !caps.trusted
        && !caps.link_encryption
    {
        plan.mac = true;
    }

    // Integrity: pick the cheapest checksum whose residual undetected-error
    // rate meets the RMS's guaranteed BER. Hardware checksumming already
    // reduced the raw rate; if that suffices, run nothing in software.
    let requested = params.error_rate.rate();
    if caps.raw_ber <= requested {
        // Medium already good enough (possibly thanks to hardware).
    } else {
        let chosen = Algorithm::ALL
            .iter()
            .copied()
            .find(|alg| caps.raw_ber * alg.undetected_error_probability() <= requested);
        // Fall back to the strongest algorithm if none meets the target;
        // negotiation should have prevented this, but selection stays total.
        plan.checksum = Some(chosen.unwrap_or(Algorithm::Crc32));
    }

    let effective = match plan.checksum {
        Some(alg) => caps.raw_ber * alg.undetected_error_probability(),
        None => caps.raw_ber,
    };
    (
        plan,
        BitErrorRate::new(effective.clamp(0.0, 1.0)).expect("valid derived BER"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::params::{RmsParams, SecurityParams};

    fn private_params(ber: f64) -> RmsParams {
        RmsParams::builder(10_000, 1_000)
            .security(SecurityParams::FULL)
            .error_rate(BitErrorRate::new(ber).unwrap())
            .build()
            .unwrap()
    }

    fn open_params(ber: f64) -> RmsParams {
        RmsParams::builder(10_000, 1_000)
            .error_rate(BitErrorRate::new(ber).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn privacy_on_untrusted_network_encrypts_in_software() {
        let caps = NetworkCapabilities {
            raw_ber: 0.0,
            ..Default::default()
        };
        let (plan, _) = select_mechanisms(&private_params(1e-6), &caps);
        assert!(plan.encrypt);
        assert!(plan.mac);
    }

    #[test]
    fn link_encryption_hardware_skips_software_crypto() {
        let caps = NetworkCapabilities {
            link_encryption: true,
            raw_ber: 0.0,
            ..Default::default()
        };
        let (plan, _) = select_mechanisms(&private_params(1e-6), &caps);
        assert!(!plan.encrypt);
        assert!(!plan.mac);
    }

    #[test]
    fn trusted_network_skips_everything_security() {
        let caps = NetworkCapabilities {
            trusted: true,
            raw_ber: 0.0,
            ..Default::default()
        };
        let (plan, _) = select_mechanisms(&private_params(1e-6), &caps);
        assert_eq!(plan, MechanismPlan::NONE);
        assert_eq!(plan.cost(), CostModel::FREE);
    }

    #[test]
    fn no_privacy_request_means_no_crypto() {
        let caps = NetworkCapabilities {
            raw_ber: 0.0,
            ..Default::default()
        };
        let (plan, _) = select_mechanisms(&open_params(1e-6), &caps);
        assert!(!plan.encrypt && !plan.mac);
    }

    #[test]
    fn clean_medium_needs_no_checksum() {
        let caps = NetworkCapabilities {
            raw_ber: 1e-12,
            ..Default::default()
        };
        let (plan, eff) = select_mechanisms(&open_params(1e-6), &caps);
        assert_eq!(plan.checksum, None);
        assert_eq!(eff.rate(), 1e-12);
    }

    #[test]
    fn noisy_medium_picks_cheapest_sufficient_checksum() {
        // raw 1e-4; Internet sum residual = 1e-4/65536 ≈ 1.5e-9 ≤ 1e-6:
        // cheapest algorithm suffices.
        let caps = NetworkCapabilities {
            raw_ber: 1e-4,
            ..Default::default()
        };
        let (plan, eff) = select_mechanisms(&open_params(1e-6), &caps);
        assert_eq!(plan.checksum, Some(Algorithm::Internet));
        assert!(eff.rate() <= 1e-6);
    }

    #[test]
    fn very_tight_ber_escalates_algorithm() {
        // raw 1e-4 with target 1e-11 needs better than the Internet sum
        // (residual 1.5e-9): escalate to a stronger checksum.
        let caps = NetworkCapabilities {
            raw_ber: 1e-4,
            ..Default::default()
        };
        let (plan, eff) = select_mechanisms(&open_params(1e-11), &caps);
        assert!(matches!(
            plan.checksum,
            Some(Algorithm::Fletcher32) | Some(Algorithm::Crc32)
        ));
        assert!(eff.rate() <= 1e-11);
    }

    #[test]
    fn hardware_checksum_reflected_in_raw_ber() {
        // With hardware checksumming the effective raw rate handed to us is
        // already tiny; software adds nothing.
        let caps = NetworkCapabilities {
            hardware_checksum: true,
            raw_ber: 1e-10,
            ..Default::default()
        };
        let (plan, _) = select_mechanisms(&open_params(1e-6), &caps);
        assert_eq!(plan.checksum, None);
    }

    #[test]
    fn plan_cost_and_overhead_accumulate() {
        let full = MechanismPlan {
            encrypt: true,
            mac: true,
            checksum: Some(Algorithm::Crc32),
        };
        assert!(full.cost().cost_for(1500) > MechanismPlan::NONE.cost().cost_for(1500));
        assert_eq!(full.header_overhead(), 12);
        assert_eq!(MechanismPlan::NONE.header_overhead(), 0);
    }
}
