//! Simulated encryption.
//!
//! **Not real cryptography.** The reproduction needs a cipher that (a)
//! actually transforms the bytes, so tests can verify that an eavesdropping
//! host cannot read a private RMS's payload, and (b) has a realistic,
//! tunable CPU cost, so the e1 experiment can measure the benefit of
//! skipping redundant encryption. A keyed xoshiro-style keystream XOR
//! satisfies both; a production system would use a real AEAD here.

use bytes::Bytes;

/// A symmetric key for the simulated stream cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub u64);

impl Key {
    /// Derive a per-stream subkey from a key and stream nonce.
    pub fn derive(self, nonce: u64) -> Key {
        let mut z = self.0 ^ nonce.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Key(z ^ (z >> 31))
    }
}

fn keystream_byte(state: &mut u64) -> u8 {
    // SplitMix64 step per byte block; cheap and deterministic.
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u8
}

/// Encrypt `data` under `key` with message nonce `nonce`.
///
/// Symmetric: applying it twice with the same key/nonce returns the
/// original bytes ([`decrypt`] is an alias).
pub fn encrypt(key: Key, nonce: u64, data: &[u8]) -> Bytes {
    let mut state = key.derive(nonce).0;
    let out: Vec<u8> = data
        .iter()
        .map(|&b| b ^ keystream_byte(&mut state))
        .collect();
    Bytes::from(out)
}

/// Decrypt `data` under `key` with message nonce `nonce`.
pub fn decrypt(key: Key, nonce: u64, data: &[u8]) -> Bytes {
    encrypt(key, nonce, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = Key(0xdead_beef);
        let plain = b"attack at dawn".to_vec();
        let ct = encrypt(key, 7, &plain);
        assert_ne!(ct.as_ref(), plain.as_slice());
        let pt = decrypt(key, 7, &ct);
        assert_eq!(pt.as_ref(), plain.as_slice());
    }

    #[test]
    fn wrong_key_or_nonce_garbles() {
        let key = Key(1);
        let plain = b"hello world hello world".to_vec();
        let ct = encrypt(key, 1, &plain);
        assert_ne!(decrypt(Key(2), 1, &ct).as_ref(), plain.as_slice());
        assert_ne!(decrypt(key, 2, &ct).as_ref(), plain.as_slice());
    }

    #[test]
    fn ciphertext_differs_across_nonces() {
        let key = Key(42);
        let plain = vec![0u8; 64];
        assert_ne!(encrypt(key, 1, &plain), encrypt(key, 2, &plain));
    }

    #[test]
    fn empty_message() {
        let ct = encrypt(Key(5), 0, &[]);
        assert!(ct.is_empty());
    }

    #[test]
    fn key_derivation_spreads() {
        let k = Key(0);
        assert_ne!(k.derive(0), k.derive(1));
        assert_ne!(k.derive(1), k.derive(2));
    }
}
