//! Simulated message authentication codes.
//!
//! Like [`crate::cipher`], this is a stand-in with real behaviour (tags
//! actually depend on key and content, forgery without the key fails in
//! tests) but no cryptographic strength. Used by the subtransport control
//! channel to authenticate peers and by authenticated RMSs to protect
//! source labels (§2.1).

use crate::cipher::Key;

/// A 64-bit authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u64);

fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^ (h >> 29)
}

/// Compute the tag of `data` under `key`, bound to `context` (e.g. the
/// source label or stream id, preventing cross-stream replay).
pub fn sign(key: Key, context: u64, data: &[u8]) -> Tag {
    let mut h = mix(0xcbf2_9ce4_8422_2325, key.0);
    h = mix(h, context);
    for chunk in data.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h = mix(h, data.len() as u64);
    h = mix(h, key.0.rotate_left(32));
    Tag(h)
}

/// Verify a tag.
pub fn verify(key: Key, context: u64, data: &[u8], tag: Tag) -> bool {
    sign(key, context, data) == tag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let key = Key(99);
        let tag = sign(key, 1, b"payload");
        assert!(verify(key, 1, b"payload", tag));
    }

    #[test]
    fn wrong_key_fails() {
        let tag = sign(Key(1), 0, b"data");
        assert!(!verify(Key(2), 0, b"data", tag));
    }

    #[test]
    fn wrong_context_fails() {
        let tag = sign(Key(1), 7, b"data");
        assert!(!verify(Key(1), 8, b"data", tag));
    }

    #[test]
    fn tampered_data_fails() {
        let tag = sign(Key(1), 0, b"data");
        assert!(!verify(Key(1), 0, b"date", tag));
        assert!(!verify(Key(1), 0, b"dataa", tag));
        assert!(!verify(Key(1), 0, b"dat", tag));
    }

    #[test]
    fn length_extension_distinct() {
        // "ab" + context vs "a" then "b" style confusions must differ.
        let t1 = sign(Key(3), 0, b"ab");
        let t2 = sign(Key(3), 0, b"a\0");
        assert_ne!(t1, t2);
    }

    #[test]
    fn empty_data_has_key_dependent_tag() {
        assert_ne!(sign(Key(1), 0, b""), sign(Key(2), 0, b""));
    }
}
