//! End-to-end tests of the network layer: creation handshake, sequenced
//! delivery, admission control, security mechanisms, failure notification.

use bytes::Bytes;
use dash_net::ids::{CreateToken, HostId, NetRmsId};
use dash_net::network::NetworkSpec;
use dash_net::pipeline::{
    close_rms, create_rms, create_rms_as_receiver, fail_network, send_datagram, send_on_rms,
};
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::{dumbbell, two_hosts_ethernet, TopologyBuilder};
use dash_net::NetworkId;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use rms_core::delay::DelayBound;
use rms_core::error::FailReason;
use rms_core::message::{Label, Message};
use rms_core::params::{BitErrorRate, Reliability, RmsParams, SecurityParams};
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;
use rms_core::RmsRequest;

/// A recording world: every delivery and event is logged.
struct World {
    net: NetState,
    deliveries: Vec<(HostId, NetRmsId, Message, DeliveryInfo)>,
    events: Vec<(HostId, String)>,
    created: Vec<(HostId, CreateToken, NetRmsId)>,
    inbound: Vec<(HostId, NetRmsId)>,
    failed: Vec<(HostId, NetRmsId, FailReason)>,
    datagrams: Vec<(HostId, u16, WireMsg)>,
    quenches: Vec<HostId>,
}

impl World {
    fn new(net: NetState) -> Self {
        World {
            net,
            deliveries: Vec::new(),
            events: Vec::new(),
            created: Vec::new(),
            inbound: Vec::new(),
            failed: Vec::new(),
            datagrams: Vec::new(),
            quenches: Vec::new(),
        }
    }
}

impl NetWorld for World {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        msg: Message,
        info: DeliveryInfo,
    ) {
        sim.state.deliveries.push((host, rms, msg, info));
    }
    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent) {
        sim.state.events.push((host, format!("{event:?}")));
        match event {
            NetRmsEvent::Created { token, rms, .. } => sim.state.created.push((host, token, rms)),
            NetRmsEvent::InboundCreated { rms, .. } => sim.state.inbound.push((host, rms)),
            NetRmsEvent::Failed { rms, reason } => sim.state.failed.push((host, rms, reason)),
            _ => {}
        }
    }
    fn deliver_datagram(
        sim: &mut Sim<Self>,
        host: HostId,
        _src: HostId,
        proto: u16,
        payload: WireMsg,
        _sent_at: SimTime,
    ) {
        sim.state.datagrams.push((host, proto, payload));
    }
    fn deliver_quench(sim: &mut Sim<Self>, host: HostId, _proto: u16, _dst: HostId) {
        sim.state.quenches.push(host);
    }
}

fn basic_params() -> RmsParams {
    RmsParams::builder(64 * 1024, 1024).build().unwrap()
}

fn settle(sim: &mut Sim<World>) {
    sim.run();
}

/// Create an RMS and return its id once the handshake completes.
fn establish(sim: &mut Sim<World>, a: HostId, b: HostId, params: RmsParams) -> NetRmsId {
    let token = create_rms(sim, a, b, &RmsRequest::exact(params)).expect("create accepted");
    settle(sim);
    let (_, _, rms) = *sim
        .state
        .created
        .iter()
        .find(|(h, t, _)| *h == a && *t == token)
        .expect("creation completed");
    rms
}

#[test]
fn handshake_creates_both_endpoints() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    assert_eq!(sim.state.inbound, vec![(b, rms)]);
    assert!(sim.state.net.host(a).rms.contains_key(&rms));
    assert!(sim.state.net.host(b).rms.contains_key(&rms));
}

#[test]
fn data_flows_and_is_delivered_in_order() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    for i in 0..20u8 {
        send_on_rms(&mut sim, a, rms, Message::new(vec![i; 100]), None, None).unwrap();
    }
    settle(&mut sim);
    assert_eq!(sim.state.deliveries.len(), 20);
    for (i, (host, r, msg, info)) in sim.state.deliveries.iter().enumerate() {
        assert_eq!(*host, b);
        assert_eq!(*r, rms);
        assert_eq!(msg.payload()[0], i as u8);
        assert_eq!(info.seq, i as u64);
        assert!(info.delay() > SimDuration::ZERO);
    }
}

#[test]
fn oversized_message_is_rejected() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    let err = send_on_rms(&mut sim, a, rms, Message::zeroes(2000), None, None).unwrap_err();
    assert!(matches!(
        err,
        rms_core::RmsError::MessageTooLarge {
            size: 2000,
            limit: 1024
        }
    ));
}

#[test]
fn receiver_cannot_send() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    let err = send_on_rms(&mut sim, b, rms, Message::zeroes(10), None, None).unwrap_err();
    assert!(matches!(err, rms_core::RmsError::WrongDirection));
}

#[test]
fn multihop_delivery_through_gateways() {
    let (net, a, b, _g1, _g2) = dumbbell();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    send_on_rms(&mut sim, a, rms, Message::zeroes(500), None, None).unwrap();
    settle(&mut sim);
    assert_eq!(sim.state.deliveries.len(), 1);
    // The path crosses three networks.
    assert_eq!(sim.state.net.host(a).rms[&rms].path.len(), 3);
    // End-to-end delay exceeds the WAN propagation alone.
    let (_, _, _, info) = &sim.state.deliveries[0];
    assert!(info.delay() >= SimDuration::from_millis(30));
}

#[test]
fn deterministic_admission_exhausts_and_releases() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    // Ethernet: 10 Mb/s = 1.25e6 B/s, 90% reservable. Each stream below
    // implies C/D = 100_000/0.2s = 500 KB/s -> only 2 fit.
    let params = RmsParams::builder(100_000, 1_000)
        .delay(DelayBound::deterministic(
            SimDuration::from_millis(200),
            SimDuration::from_micros(2),
        ))
        .error_rate(BitErrorRate::new(1e-4).unwrap())
        .build()
        .unwrap();
    let r1 = establish(&mut sim, a, b, params.clone());
    let _r2 = establish(&mut sim, a, b, params.clone());
    // Third is denied at the creator's own interface.
    let t3 = create_rms(&mut sim, a, b, &RmsRequest::exact(params.clone())).unwrap();
    settle(&mut sim);
    let failed = sim.state.events.iter().any(|(h, e)| {
        *h == a
            && e.contains("CreateFailed")
            && e.contains(&format!("{t3:?}").replace("CreateToken", ""))
            || e.contains("AdmissionDenied")
    });
    assert!(
        failed,
        "third stream should be denied: {:?}",
        sim.state.events
    );
    // Closing one frees capacity for a new stream.
    close_rms(&mut sim, a, r1).unwrap();
    settle(&mut sim);
    let _r4 = establish(&mut sim, a, b, params);
}

#[test]
fn best_effort_never_rejected() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    for _ in 0..50 {
        let _ = establish(&mut sim, a, b, basic_params());
    }
    assert_eq!(sim.state.created.len(), 50);
}

#[test]
fn close_notifies_receiver() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    close_rms(&mut sim, a, rms).unwrap();
    settle(&mut sim);
    assert!(sim
        .state
        .events
        .iter()
        .any(|(h, e)| *h == b && e.contains("Closed")));
    assert!(!sim.state.net.host(b).rms.contains_key(&rms));
}

#[test]
fn network_failure_notifies_clients() {
    let (net, a, b, _g1, _g2) = dumbbell();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    fail_network(&mut sim, NetworkId(1)); // the WAN
    settle(&mut sim);
    let failed_hosts: Vec<HostId> = sim.state.failed.iter().map(|(h, _, _)| *h).collect();
    assert!(failed_hosts.contains(&a));
    assert!(failed_hosts.contains(&b));
    assert!(sim
        .state
        .failed
        .iter()
        .all(|(_, r, reason)| *r == rms && *reason == FailReason::NetworkDown));
    // Sends now fail.
    let err = send_on_rms(&mut sim, a, rms, Message::zeroes(10), None, None).unwrap_err();
    assert!(matches!(err, rms_core::RmsError::Failed(_)));
}

#[test]
fn unroutable_peer_rejected_synchronously() {
    let mut b = TopologyBuilder::new();
    let n1 = b.network(NetworkSpec::ethernet("x"));
    let n2 = b.network(NetworkSpec::ethernet("y"));
    let a = b.host_on(n1);
    let c = b.host_on(n2);
    let mut sim = Sim::new(World::new(b.build()));
    let err = create_rms(&mut sim, a, c, &RmsRequest::exact(basic_params())).unwrap_err();
    assert!(matches!(
        err,
        rms_core::RmsError::CreationRejected(rms_core::RejectReason::NoRoute)
    ));
}

#[test]
fn receiver_side_creation_via_invite() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    // b wants to *receive* from a.
    let token = create_rms_as_receiver(&mut sim, b, a, &RmsRequest::exact(basic_params())).unwrap();
    settle(&mut sim);
    // b got an inbound endpoint answering the invite.
    assert!(sim.state.events.iter().any(|(h, e)| *h == b
        && e.contains("InboundCreated")
        && e.contains(&format!("{token:?}"))));
    // a got a sender endpoint by invite.
    assert!(sim
        .state
        .events
        .iter()
        .any(|(h, e)| *h == a && e.contains("SenderCreatedByInvite")));
    // And a can now send to b.
    let rms = sim.state.inbound.last().unwrap().1;
    send_on_rms(&mut sim, a, rms, Message::zeroes(64), None, None).unwrap();
    settle(&mut sim);
    assert_eq!(sim.state.deliveries.len(), 1);
}

#[test]
fn private_stream_is_encrypted_on_the_wire() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    sim.state.net.network_mut(NetworkId(0)).wiretap = Some(Vec::new());
    let params = RmsParams::builder(64 * 1024, 1024)
        .security(SecurityParams::FULL)
        .build()
        .unwrap();
    let rms = establish(&mut sim, a, b, params);
    let secret = b"attack at dawn, bring snacks".to_vec();
    send_on_rms(&mut sim, a, rms, Message::new(secret.clone()), None, None).unwrap();
    settle(&mut sim);
    // Delivered plaintext intact...
    assert_eq!(sim.state.deliveries.len(), 1);
    assert_eq!(sim.state.deliveries[0].2.payload().as_ref(), &secret[..]);
    // ...but the wire saw only ciphertext.
    let taps = sim
        .state
        .net
        .network(NetworkId(0))
        .wiretap
        .as_ref()
        .unwrap();
    assert!(!taps.is_empty());
    assert!(taps.iter().all(|t| t.as_ref() != &secret[..]));
}

#[test]
fn open_stream_is_cleartext_on_the_wire() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    sim.state.net.network_mut(NetworkId(0)).wiretap = Some(Vec::new());
    let rms = establish(&mut sim, a, b, basic_params());
    let text = b"postcard contents".to_vec();
    send_on_rms(&mut sim, a, rms, Message::new(text.clone()), None, None).unwrap();
    settle(&mut sim);
    let taps = sim
        .state
        .net
        .network(NetworkId(0))
        .wiretap
        .as_ref()
        .unwrap();
    assert!(taps.iter().any(|t| t.as_ref() == &text[..]));
}

#[test]
fn authenticated_stream_preserves_source_label() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let params = RmsParams::builder(64 * 1024, 1024)
        .security(SecurityParams {
            authentication: rms_core::Authentication::Authenticated,
            privacy: rms_core::Privacy::Open,
        })
        .build()
        .unwrap();
    let rms = establish(&mut sim, a, b, params);
    let msg = Message::labelled(Label(77), Label(88), vec![1, 2, 3]);
    send_on_rms(&mut sim, a, rms, msg, None, None).unwrap();
    settle(&mut sim);
    assert_eq!(sim.state.deliveries.len(), 1);
    assert_eq!(sim.state.deliveries[0].2.source, Some(Label(77)));
    assert_eq!(sim.state.deliveries[0].2.target, Some(Label(88)));
}

#[test]
fn datagrams_flow_without_any_rms() {
    let (net, a, b, _, _) = dumbbell();
    let mut sim = Sim::new(World::new(net));
    send_datagram(&mut sim, a, b, 42, Bytes::from_static(b"hello").into());
    settle(&mut sim);
    assert_eq!(sim.state.datagrams.len(), 1);
    assert_eq!(sim.state.datagrams[0].1, 42);
    assert_eq!(sim.state.datagrams[0].2.contiguous().as_ref(), b"hello");
}

#[test]
fn gateway_overflow_triggers_source_quench() {
    // Tiny gateway queues + a flood of datagrams.
    let mut b = TopologyBuilder::new();
    let lan_a = b.network(NetworkSpec::ethernet("lan-a"));
    let mut wan_spec = NetworkSpec::long_haul("wan");
    wan_spec.rate_bps = 64_000.0; // slow bottleneck
    wan_spec.drop_prob = 0.0;
    let wan = b.network(wan_spec);
    let lan_b = b.network(NetworkSpec::ethernet("lan-b"));
    let a = b.host_on(lan_a);
    let _g1 = b.gateway(lan_a, wan);
    let _g2 = b.gateway(wan, lan_b);
    let c = b.host_on(lan_b);
    b.iface_queue_limit(Some(4_000));
    let mut sim = Sim::new(World::new(b.build()));
    // Pace sends at 1 ms so the sender's own 10 Mb/s interface drains, and
    // the 64 kb/s WAN hop at the gateway becomes the overflowing bottleneck.
    for i in 0..100u64 {
        sim.schedule_in(SimDuration::from_millis(i), move |sim| {
            send_datagram(sim, a, c, 7, Bytes::from(vec![0u8; 1_000]).into());
        });
    }
    sim.run();
    assert!(
        !sim.state.quenches.is_empty(),
        "overloaded gateway should quench"
    );
    assert!(sim.state.quenches.iter().all(|h| *h == a));
    assert!(sim.state.datagrams.len() < 100, "some datagrams dropped");
}

#[test]
fn reliable_stream_survives_lossy_wire() {
    let mut b = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.05;
    spec.caps.raw_ber = 1e-6;
    let n = b.network(spec);
    let a = b.host_on(n);
    let c = b.host_on(n);
    let mut sim = Sim::new(World::new(b.build()));
    let params = RmsParams::builder(64 * 1024, 1024)
        .reliability(Reliability::Reliable)
        .error_rate(BitErrorRate::ZERO)
        .build()
        .unwrap();
    let rms = establish(&mut sim, a, c, params);
    for i in 0..200u8 {
        send_on_rms(&mut sim, a, rms, Message::new(vec![i; 200]), None, None).unwrap();
    }
    sim.run();
    assert_eq!(sim.state.deliveries.len(), 200, "reliable: nothing lost");
    for (i, d) in sim.state.deliveries.iter().enumerate() {
        assert_eq!(d.3.seq, i as u64, "reliable: in order");
    }
}

#[test]
fn unreliable_stream_drops_but_preserves_order() {
    let mut b = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("lossy");
    spec.drop_prob = 0.2;
    spec.caps.raw_ber = 0.0;
    let n = b.network(spec);
    let a = b.host_on(n);
    let c = b.host_on(n);
    let mut sim = Sim::new(World::new(b.build()));
    let rms = establish(&mut sim, a, c, basic_params());
    for i in 0..200u8 {
        send_on_rms(&mut sim, a, rms, Message::new(vec![i; 200]), None, None).unwrap();
    }
    sim.run();
    let n_delivered = sim.state.deliveries.len();
    assert!(n_delivered < 200, "some loss expected");
    assert!(n_delivered > 100, "most should arrive");
    // Sequence numbers strictly increase (in-sequence delivery, §2).
    let seqs: Vec<u64> = sim.state.deliveries.iter().map(|d| d.3.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    // Receiver counted the gaps as losses.
    let stats = &sim.state.net.host(c).rms[&rms].stats;
    assert_eq!(stats.delivered.get() as usize, n_delivered);
    assert!(stats.lost.get() > 0);
}

#[test]
fn corruption_detected_when_error_rate_needs_checksum() {
    let mut b = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("noisy");
    spec.drop_prob = 0.0;
    spec.caps.raw_ber = 1e-4; // very noisy medium
    let n = b.network(spec);
    let a = b.host_on(n);
    let c = b.host_on(n);
    let mut sim = Sim::new(World::new(b.build()));
    // Request a BER far below the raw medium: forces a checksum.
    let params = RmsParams::builder(64 * 1024, 1024)
        .error_rate(BitErrorRate::new(1e-7).unwrap())
        .build()
        .unwrap();
    let rms = establish(&mut sim, a, c, params);
    for i in 0..300u32 {
        send_on_rms(
            &mut sim,
            a,
            rms,
            Message::new(vec![(i % 256) as u8; 500]),
            None,
            None,
        )
        .unwrap();
    }
    sim.run();
    let stats = &sim.state.net.host(c).rms[&rms].stats;
    assert!(
        stats.corrupt_dropped.get() > 0,
        "noisy wire must corrupt some packets; checksum catches them"
    );
    assert_eq!(stats.corrupt_delivered.get(), 0);
    // No corrupted payload reached the client.
    for (i, d) in sim.state.deliveries.iter().enumerate() {
        let _ = i;
        let first = d.2.payload()[0];
        assert!(d.2.payload().iter().all(|&b| b == first));
    }
}

#[test]
fn corruption_delivered_when_client_tolerates_errors() {
    let mut b = TopologyBuilder::new();
    let mut spec = NetworkSpec::ethernet("noisy");
    spec.drop_prob = 0.0;
    spec.caps.raw_ber = 1e-4;
    let n = b.network(spec);
    let a = b.host_on(n);
    let c = b.host_on(n);
    let mut sim = Sim::new(World::new(b.build()));
    // Client tolerates a BER as high as the raw medium: no checksum runs
    // ("a high bit error rate may be acceptable" for voice, §2.5).
    let params = RmsParams::builder(64 * 1024, 1024)
        .error_rate(BitErrorRate::new(1e-3).unwrap())
        .build()
        .unwrap();
    let rms = establish(&mut sim, a, c, params);
    for _ in 0..300 {
        send_on_rms(
            &mut sim,
            a,
            rms,
            Message::new(vec![0xAAu8; 500]),
            None,
            None,
        )
        .unwrap();
    }
    sim.run();
    let stats = &sim.state.net.host(c).rms[&rms].stats;
    assert!(
        stats.corrupt_delivered.get() > 0,
        "no checksum -> corrupt bytes delivered"
    );
    assert_eq!(stats.corrupt_dropped.get(), 0);
}

#[test]
fn deadline_clamping_keeps_transmission_order() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    let now = sim.now();
    // Deliberately send with *decreasing* deadlines; §4.3.1 clamping must
    // keep delivery in send order anyway.
    for i in (0..10u8).rev() {
        let d = now + SimDuration::from_millis(1 + i as u64);
        send_on_rms(
            &mut sim,
            a,
            rms,
            Message::new(vec![9 - i; 50]),
            Some(d),
            None,
        )
        .unwrap();
    }
    sim.run();
    // With clamping, all ten arrive (none judged stale) and in seq order.
    assert_eq!(sim.state.deliveries.len(), 10);
    let seqs: Vec<u64> = sim.state.deliveries.iter().map(|d| d.3.seq).collect();
    assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
}

#[test]
fn create_interns_one_params_allocation_along_the_whole_path() {
    let (net, a, b, g1, g2) = dumbbell();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b, basic_params());
    let sender_params = sim.state.net.host(a).rms[&rms].params.clone();
    // Both endpoints and every hop reservation hold the *same* allocation:
    // the creation handshake moves one shared handle along the path instead
    // of copying the parameter struct at each hop.
    assert!(std::sync::Arc::ptr_eq(
        &sender_params,
        &sim.state.net.host(b).rms[&rms].params
    ));
    for hop in [a, g1, g2] {
        let (_, reserved) = &sim.state.net.host(hop).reservations[&rms];
        assert!(
            std::sync::Arc::ptr_eq(reserved, &sender_params),
            "hop {hop:?} holds a separate params copy"
        );
    }
    // The receiver endpoint has no outbound reservation of its own.
    assert!(!sim.state.net.host(b).reservations.contains_key(&rms));
    // Hop-by-hop forwarding still records the full three-network path and
    // the ack echoes it back to the sender unchanged.
    let sender_path = &sim.state.net.host(a).rms[&rms].path;
    let receiver_path = &sim.state.net.host(b).rms[&rms].path;
    assert_eq!(sender_path, receiver_path);
    assert_eq!(sender_path.len(), 3);
}
