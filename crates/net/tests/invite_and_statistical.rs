//! Receiver-side creation (§2.4 invites) and statistical-RMS behaviour at
//! the network layer.

use dash_net::ids::{HostId, NetRmsId};
use dash_net::pipeline::{create_rms, create_rms_as_receiver, send_on_rms};
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::two_hosts_ethernet;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use rms_core::bandwidth::send_interval_for;
use rms_core::delay::{DelayBound, DelayBoundKind, StatisticalSpec};
use rms_core::message::Message;
use rms_core::params::{BitErrorRate, RmsParams};
use rms_core::port::DeliveryInfo;
use rms_core::RmsRequest;

#[derive(Default)]
struct Events {
    delivered: u64,
    created: u64,
    inbound_with_invite: u64,
    sender_by_invite: u64,
    rejected: u64,
}

struct World {
    net: NetState,
    ev: Events,
}

impl NetWorld for World {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        sim: &mut Sim<Self>,
        _host: HostId,
        _rms: NetRmsId,
        _msg: Message,
        _info: DeliveryInfo,
    ) {
        sim.state.ev.delivered += 1;
    }
    fn rms_event(sim: &mut Sim<Self>, _host: HostId, event: NetRmsEvent) {
        match event {
            NetRmsEvent::Created { .. } => sim.state.ev.created += 1,
            NetRmsEvent::InboundCreated {
                invite: Some(_), ..
            } => {
                sim.state.ev.inbound_with_invite += 1;
            }
            NetRmsEvent::SenderCreatedByInvite { .. } => sim.state.ev.sender_by_invite += 1,
            NetRmsEvent::CreateFailed { .. } | NetRmsEvent::InviteFailed { .. } => {
                sim.state.ev.rejected += 1
            }
            _ => {}
        }
    }
}

fn world() -> (Sim<World>, HostId, HostId) {
    let (net, a, b) = two_hosts_ethernet();
    (
        Sim::new(World {
            net,
            ev: Events::default(),
        }),
        a,
        b,
    )
}

#[test]
fn receiver_side_invite_creates_a_working_stream() {
    let (mut sim, a, b) = world();
    // b asks to *receive* from a (§2.4: "the creator of an RMS may act as
    // either the sender or the receiver").
    let params = RmsParams::builder(32 * 1024, 1024).build().unwrap();
    create_rms_as_receiver(&mut sim, b, a, &RmsRequest::exact(params)).unwrap();
    sim.run();
    assert_eq!(
        sim.state.ev.inbound_with_invite, 1,
        "b's endpoint answers the invite"
    );
    assert_eq!(
        sim.state.ev.sender_by_invite, 1,
        "a owns a sender it did not request"
    );
    // a's new sender endpoint can carry traffic to b.
    let rms = *sim
        .state
        .net
        .host(a)
        .rms
        .iter()
        .find(|(_, r)| matches!(r.role, dash_net::rms::RmsRole::Sender))
        .map(|(id, _)| id)
        .unwrap();
    for _ in 0..5 {
        send_on_rms(&mut sim, a, rms, Message::zeroes(100), None, None).unwrap();
    }
    sim.run();
    assert_eq!(sim.state.ev.delivered, 5);
}

#[test]
fn statistical_streams_admit_until_the_math_says_no() {
    let (mut sim, a, b) = world();
    // Each stream declares 300 KB/s average load on a 1.25 MB/s wire:
    // admission must stop before saturation (λ < μ).
    let params = RmsParams::builder(32 * 1024, 1_024)
        .delay(DelayBound {
            fixed: SimDuration::from_millis(100),
            per_byte: SimDuration::from_micros(2),
            kind: DelayBoundKind::Statistical(StatisticalSpec::new(300_000.0, 2.0, 0.9)),
        })
        .error_rate(BitErrorRate::new(1e-4).unwrap())
        .build()
        .unwrap();
    for _ in 0..8 {
        let _ = create_rms(&mut sim, a, b, &RmsRequest::exact(params.clone()));
        sim.run();
    }
    let admitted = sim.state.ev.created;
    assert!(admitted >= 2, "low utilization must admit: {admitted}");
    assert!(admitted < 8, "saturation must deny: {admitted}");
    assert!(sim.state.ev.rejected > 0);
}

#[test]
fn statistical_stream_meets_its_bound_at_declared_load() {
    let (mut sim, a, b) = world();
    let params = RmsParams::builder(16 * 1024, 1_024)
        .delay(DelayBound {
            fixed: SimDuration::from_millis(50),
            per_byte: SimDuration::from_micros(2),
            kind: DelayBoundKind::Statistical(StatisticalSpec::new(100_000.0, 2.0, 0.95)),
        })
        .error_rate(BitErrorRate::new(1e-4).unwrap())
        .build()
        .unwrap();
    create_rms(&mut sim, a, b, &RmsRequest::exact(params.clone())).unwrap();
    sim.run();
    let rms = *sim
        .state
        .net
        .host(a)
        .rms
        .keys()
        .next()
        .expect("stream created");
    // Send at the declared average load for one second.
    let interval = send_interval_for(&params, 1_024);
    let end = sim.now() + SimDuration::from_secs(1);
    while sim.now() < end {
        let _ = send_on_rms(&mut sim, a, rms, Message::zeroes(1_024), None, None);
        sim.run_until(sim.now() + interval);
    }
    sim.run();
    let stats = &sim.state.net.host(b).rms[&rms].stats;
    assert!(stats.delivered.get() > 50);
    let late_fraction = stats.late.get() as f64 / stats.delivered.get() as f64;
    assert!(
        late_fraction <= 0.05,
        "bound promised with p=0.95; late fraction {late_fraction}"
    );
}
