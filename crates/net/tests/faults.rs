//! Fault-injection tests at the network layer: dead networks, partitions,
//! burst loss, interface stalls, host crashes, and the control-packet
//! overflow exemption.

use bytes::Bytes;
use dash_net::fault::{apply_fault, crash_host, restart_host, schedule_fault_plan, stall_iface};
use dash_net::ids::{CreateToken, HostId, NetRmsId};
use dash_net::network::NetworkSpec;
use dash_net::pipeline::{create_rms, fail_network, send_datagram, send_on_rms};
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::{two_hosts_ethernet, TopologyBuilder};
use dash_net::NetworkId;
use dash_sim::fault::{FaultKind, FaultPlan, GilbertElliott};
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::Sim;
use rms_core::error::{FailReason, RejectReason};
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;
use rms_core::RmsRequest;

/// A recording world.
struct World {
    net: NetState,
    deliveries: Vec<(HostId, NetRmsId, Message)>,
    created: Vec<(HostId, CreateToken, NetRmsId)>,
    create_failed: Vec<(HostId, CreateToken, RejectReason)>,
    failed: Vec<(HostId, NetRmsId, FailReason)>,
    datagrams: Vec<(HostId, u16, WireMsg, SimTime)>,
    network_events: Vec<(NetworkId, bool)>,
}

impl World {
    fn new(mut net: NetState) -> Self {
        net.obs.enable();
        World {
            net,
            deliveries: Vec::new(),
            created: Vec::new(),
            create_failed: Vec::new(),
            failed: Vec::new(),
            datagrams: Vec::new(),
            network_events: Vec::new(),
        }
    }
}

impl NetWorld for World {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        msg: Message,
        _info: DeliveryInfo,
    ) {
        sim.state.deliveries.push((host, rms, msg));
    }
    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent) {
        match event {
            NetRmsEvent::Created { token, rms, .. } => sim.state.created.push((host, token, rms)),
            NetRmsEvent::CreateFailed { token, reason } => {
                sim.state.create_failed.push((host, token, reason));
            }
            NetRmsEvent::Failed { rms, reason } => sim.state.failed.push((host, rms, reason)),
            _ => {}
        }
    }
    fn deliver_datagram(
        sim: &mut Sim<Self>,
        host: HostId,
        _src: HostId,
        proto: u16,
        payload: WireMsg,
        sent_at: SimTime,
    ) {
        sim.state.datagrams.push((host, proto, payload, sent_at));
    }
    fn network_event(sim: &mut Sim<Self>, network: NetworkId, up: bool) {
        sim.state.network_events.push((network, up));
    }
}

fn basic_params() -> RmsParams {
    RmsParams::builder(64 * 1024, 1024).build().unwrap()
}

fn establish(sim: &mut Sim<World>, a: HostId, b: HostId) -> NetRmsId {
    let token = create_rms(sim, a, b, &RmsRequest::exact(basic_params())).expect("creatable");
    sim.run();
    sim.state
        .created
        .iter()
        .find(|(h, t, _)| *h == a && *t == token)
        .map(|(_, _, rms)| *rms)
        .expect("creation completed")
}

/// Two hosts joined by a slow long-haul link, so packets spend milliseconds
/// serializing and propagating — a wide window to kill the network with
/// traffic in flight.
fn two_hosts_long_haul() -> (NetState, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let net = b.network(NetworkSpec::long_haul("wan"));
    let a = b.host_on(net);
    let c = b.host_on(net);
    (b.build(), a, c)
}

#[test]
fn in_flight_packets_on_failed_network_are_lost() {
    let (net, a, b) = two_hosts_long_haul();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b);
    let drops_before = sim.state.net.stats.wire_drops.get();

    // 1000 payload bytes at 1.5 Mb/s ≈ 6 ms of serialization alone: the
    // network dies while the packet is still on its interface.
    send_on_rms(&mut sim, a, rms, Message::new(vec![7u8; 1000]), None, None).unwrap();
    let kill_at = sim.now().saturating_add(SimDuration::from_millis(1));
    sim.run_until(kill_at);
    fail_network(&mut sim, NetworkId(0));
    sim.run();

    assert!(
        sim.state.deliveries.is_empty(),
        "in-flight packet must not be delivered across a dead network"
    );
    assert!(sim.state.net.stats.wire_drops.get() > drops_before);
    // Both endpoints heard the typed failure.
    assert!(sim
        .state
        .failed
        .iter()
        .any(|(h, r, reason)| *h == a && *r == rms && *reason == FailReason::NetworkDown));
    assert!(sim
        .state
        .failed
        .iter()
        .any(|(h, r, reason)| *h == b && *r == rms && *reason == FailReason::NetworkDown));
    // The upward availability hook fired.
    assert_eq!(sim.state.network_events, vec![(NetworkId(0), false)]);
}

#[test]
fn admission_rejects_creates_on_down_network() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    // The create is accepted synchronously (route existed), but the network
    // dies before the handshake's first packet goes out.
    let token = create_rms(&mut sim, a, b, &RmsRequest::exact(basic_params())).unwrap();
    fail_network(&mut sim, NetworkId(0));
    sim.run();
    assert!(
        sim.state
            .create_failed
            .iter()
            .any(|(h, t, reason)| *h == a && *t == token && *reason == RejectReason::NoRoute),
        "pending create must be refused on a down network: {:?}",
        sim.state.create_failed
    );
    assert!(sim.state.created.is_empty());

    // And a fresh create fails synchronously: routing knows the medium is
    // gone.
    assert!(create_rms(&mut sim, a, b, &RmsRequest::exact(basic_params())).is_err());
}

#[test]
fn control_packets_exempt_from_overflow_under_datagram_flood() {
    // Satellite regression: a gateway queue stuffed past its byte limit by
    // datagram traffic must still pass the tiny control packets that run
    // the RMS creation handshake (see Iface::enqueue).
    let mut b = TopologyBuilder::new();
    let lan = b.network(NetworkSpec::ethernet("lan"));
    let a = b.host_on(lan);
    let c = b.host_on(lan);
    b.iface_queue_limit(Some(4 * 1024));
    let mut sim = Sim::new(World::new(b.build()));

    // Flood: far more raw bytes than the 4 KiB limit, all enqueued now.
    for _ in 0..32 {
        send_datagram(&mut sim, a, c, 9, Bytes::from(vec![0u8; 1024]).into());
    }
    let token = create_rms(&mut sim, a, c, &RmsRequest::exact(basic_params())).unwrap();
    sim.run();

    let drops = sim.state.net.host(a).ifaces[0].stats.overflow_drops.get();
    assert!(drops > 0, "flood must overflow the data queue");
    assert!(
        sim.state
            .created
            .iter()
            .any(|(h, t, _)| *h == a && *t == token),
        "handshake must complete despite the flooded queue: {:?}",
        sim.state.create_failed
    );
}

#[test]
fn partition_blocks_traffic_until_healed() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    apply_fault(&mut sim, &FaultKind::Partition { a: a.0, b: b.0 });
    send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"blocked").into());
    sim.run();
    assert!(
        sim.state.datagrams.is_empty(),
        "partition must drop traffic"
    );

    apply_fault(&mut sim, &FaultKind::HealPartition { a: a.0, b: b.0 });
    send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"through").into());
    sim.run();
    assert_eq!(sim.state.datagrams.len(), 1);
    assert_eq!(sim.state.datagrams[0].2.contiguous().as_ref(), b"through");
    // Fault applications were counted by kind.
    let reg = &mut sim.state.net.obs.registry;
    assert_eq!(reg.counter("fault.partition").get(), 1);
    assert_eq!(reg.counter("fault.heal_partition").get(), 1);
}

#[test]
fn burst_loss_model_overrides_wire_and_clears() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    // A channel that loses everything in either state.
    let model = GilbertElliott::new(1.0, 0.0, 1.0, 1.0);
    apply_fault(&mut sim, &FaultKind::BurstLossStart { network: 0, model });
    for _ in 0..5 {
        send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"x").into());
    }
    sim.run();
    assert!(
        sim.state.datagrams.is_empty(),
        "burst-bad channel loses all"
    );

    apply_fault(&mut sim, &FaultKind::BurstLossEnd { network: 0 });
    send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"y").into());
    sim.run();
    assert_eq!(sim.state.datagrams.len(), 1);
}

#[test]
fn iface_stall_delays_but_does_not_drop() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let stall = SimDuration::from_millis(50);
    let stalled_until = sim.now().saturating_add(stall);
    stall_iface(&mut sim, a, NetworkId(0), stall);
    send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"late").into());
    sim.run();
    assert_eq!(sim.state.datagrams.len(), 1, "stall must not drop packets");
    assert!(
        sim.now() >= stalled_until,
        "delivery cannot predate the stall's end"
    );
}

#[test]
fn host_crash_fails_local_rms_and_restart_allows_new() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let rms = establish(&mut sim, a, b);

    crash_host(&mut sim, b);
    assert!(sim
        .state
        .failed
        .iter()
        .any(|(h, r, reason)| *h == b && *r == rms && *reason == FailReason::ResourcesRevoked));

    // Traffic toward the crashed host dies on arrival.
    let n = sim.state.deliveries.len();
    send_on_rms(&mut sim, a, rms, Message::new(vec![1u8; 64]), None, None).unwrap();
    sim.run();
    assert_eq!(sim.state.deliveries.len(), n);

    // After restart, a fresh RMS works end to end.
    restart_host(&mut sim, b);
    let rms2 = establish(&mut sim, a, b);
    send_on_rms(&mut sim, a, rms2, Message::new(vec![2u8; 64]), None, None).unwrap();
    sim.run();
    assert!(sim
        .state
        .deliveries
        .iter()
        .any(|(h, r, _)| *h == b && *r == rms2));
    let reg = &mut sim.state.net.obs.registry;
    assert_eq!(reg.counter("net.host_crashed").get(), 1);
    assert_eq!(reg.counter("net.host_restarted").get(), 1);
}

#[test]
fn crashed_host_is_not_used_as_transit() {
    // a - lan1 - g - lan2 - b: killing the gateway strands the edge hosts.
    let mut builder = TopologyBuilder::new();
    let lan1 = builder.network(NetworkSpec::ethernet("lan1"));
    let lan2 = builder.network(NetworkSpec::ethernet("lan2"));
    let a = builder.host_on(lan1);
    let g = builder.gateway(lan1, lan2);
    let b = builder.host_on(lan2);
    let mut sim = Sim::new(World::new(builder.build()));
    assert!(sim.state.net.path(a, b).is_some());
    crash_host(&mut sim, g);
    assert!(
        sim.state.net.path(a, b).is_none(),
        "routes must not traverse a crashed gateway"
    );
    restart_host(&mut sim, g);
    assert!(sim.state.net.path(a, b).is_some());
}

/// A dumbbell with a disjoint backup path: `a` and `b` sit on fast LANs
/// joined by two parallel WAN gateway pairs. Returns
/// `(state, a, b, primary_wan, backup_wan)`.
fn dumbbell_with_backup() -> (NetState, HostId, HostId, NetworkId, NetworkId) {
    let mut builder = TopologyBuilder::new();
    let lan_a = builder.network(NetworkSpec::fast_lan("lan-a"));
    let wan_p = builder.network(NetworkSpec::long_haul("wan-primary"));
    let wan_b = builder.network(NetworkSpec::long_haul("wan-backup"));
    let lan_b = builder.network(NetworkSpec::fast_lan("lan-b"));
    let a = builder.host_on(lan_a);
    let _g1 = builder.gateway(lan_a, wan_p); // primary pair: lower ids win ties
    let _g2 = builder.gateway(wan_p, lan_b);
    let _g3 = builder.gateway(lan_a, wan_b);
    let _g4 = builder.gateway(wan_b, lan_b);
    let b = builder.host_on(lan_b);
    (builder.build(), a, b, wan_p, wan_b)
}

#[test]
fn stale_route_retry_reroutes_over_backup_path() {
    // Regression: a create whose first attempt was swallowed by a network
    // death used to have its retry timer consult the (now stale) route it
    // captured at create time and fail with NoRoute. The retry must notice
    // the route-generation bump, re-resolve its candidates, and establish
    // over the surviving backup path.
    let (net, a, b, wan_p, _wan_b) = dumbbell_with_backup();
    let mut sim = Sim::new(World::new(net));
    let token = create_rms(&mut sim, a, b, &RmsRequest::exact(basic_params())).unwrap();

    // The first CreateReq needs ~30 ms of WAN propagation; kill the
    // primary WAN while the handshake is crossing it.
    sim.run_until(sim.now().saturating_add(SimDuration::from_millis(5)));
    fail_network(&mut sim, wan_p);
    sim.run();

    assert!(
        sim.state
            .created
            .iter()
            .any(|(h, t, _)| *h == a && *t == token),
        "retry must re-route over the backup WAN: {:?}",
        sim.state.create_failed
    );
    assert!(
        sim.state.create_failed.is_empty(),
        "no NoRoute from the stale retry: {:?}",
        sim.state.create_failed
    );
    // Reconvergence is lazy: tables rebuild at first use. Table-routed
    // traffic (a datagram) forces the rebuild and lands on the backup.
    send_datagram(&mut sim, a, b, 7, Bytes::from_static(b"rerouted").into());
    sim.run();
    assert_eq!(sim.state.datagrams.len(), 1);
    let reg = &mut sim.state.net.obs.registry;
    assert!(reg.counter("routing.floods").get() > 0, "scoped re-flood");
    assert!(reg.counter("routing.recompute").get() > 0, "lazy recompute");
}

#[test]
fn scheduled_flap_plan_leaves_network_up_and_counts_faults() {
    let (net, a, b) = two_hosts_ethernet();
    let mut sim = Sim::new(World::new(net));
    let plan = FaultPlan::new().flap(
        0,
        SimTime::ZERO.saturating_add(SimDuration::from_millis(10)),
        SimDuration::from_millis(20), // down for
        SimDuration::from_millis(20), // up for
        SimTime::ZERO.saturating_add(SimDuration::from_millis(200)),
    );
    let downs = plan
        .events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::NetworkDown { .. }))
        .count() as u64;
    schedule_fault_plan(&mut sim, &plan);
    sim.run();
    assert!(!sim.state.net.network(NetworkId(0)).down, "flap ends up");
    // Every down was eventually matched by an up, and the upward hook saw
    // the same sequence.
    let ups = sim
        .state
        .network_events
        .iter()
        .filter(|(_, up)| *up)
        .count() as u64;
    assert_eq!(ups, downs);
    let reg = &mut sim.state.net.obs.registry;
    assert_eq!(reg.counter("fault.network_down").get(), downs);
    assert_eq!(reg.counter("fault.network_up").get(), downs);
    // The network works again after the plan.
    let _ = establish(&mut sim, a, b);
}
