//! The distributed QoS routing subsystem end to end: link-state floods,
//! constrained k-alternate selection, admission-aware establishment
//! fallback, and deterministic route computation over random meshes.

use dash_net::ids::{CreateToken, HostId, NetRmsId};
use dash_net::network::NetworkSpec;
use dash_net::pipeline::{create_rms, send_on_rms};
use dash_net::routing::{self, candidate_paths, flood_from, k_paths};
use dash_net::state::{NetRmsEvent, NetState, NetWorld};
use dash_net::topology::TopologyBuilder;
use dash_net::NetworkId;
use dash_sim::time::SimDuration;
use dash_sim::Sim;
use proptest::prelude::*;
use rms_core::delay::DelayBound;
use rms_core::error::RejectReason;
use rms_core::message::Message;
use rms_core::params::RmsParams;
use rms_core::port::DeliveryInfo;
use rms_core::RmsRequest;

struct World {
    net: NetState,
    created: Vec<(HostId, CreateToken, NetRmsId)>,
    create_failed: Vec<(HostId, CreateToken, RejectReason)>,
    deliveries: Vec<(HostId, NetRmsId)>,
}

impl World {
    fn new(mut net: NetState) -> Self {
        net.obs.enable();
        World {
            net,
            created: Vec::new(),
            create_failed: Vec::new(),
            deliveries: Vec::new(),
        }
    }
}

impl NetWorld for World {
    fn net(&mut self) -> &mut NetState {
        &mut self.net
    }
    fn net_ref(&self) -> &NetState {
        &self.net
    }
    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        _msg: Message,
        _info: DeliveryInfo,
    ) {
        sim.state.deliveries.push((host, rms));
    }
    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent) {
        match event {
            NetRmsEvent::Created { token, rms, .. } => sim.state.created.push((host, token, rms)),
            NetRmsEvent::CreateFailed { token, reason } => {
                sim.state.create_failed.push((host, token, reason));
            }
            _ => {}
        }
    }
}

/// Two fast LANs joined by two parallel single-Ethernet middles: the
/// primary pair (`g1`, `g2`, lower host ids) and a backup pair. Returns
/// `(state, a, b, primary_mid, backup_mid)`.
fn parallel_middles() -> (NetState, HostId, HostId, NetworkId, NetworkId) {
    let mut b = TopologyBuilder::new();
    let lan_a = b.network(NetworkSpec::fast_lan("lan-a"));
    let mid_p = b.network(NetworkSpec::ethernet("mid-primary"));
    let mid_b = b.network(NetworkSpec::ethernet("mid-backup"));
    let lan_b = b.network(NetworkSpec::fast_lan("lan-b"));
    let a = b.host_on(lan_a);
    let _g1 = b.gateway(lan_a, mid_p);
    let _g2 = b.gateway(mid_p, lan_b);
    let _g3 = b.gateway(lan_a, mid_b);
    let _g4 = b.gateway(mid_b, lan_b);
    let peer = b.host_on(lan_b);
    (b.build(), a, peer, mid_p, mid_b)
}

/// Deterministic params whose admission demand is roughly
/// `capacity / 52ms` (50 ms fixed plus 2 µs/byte, comfortably above the
/// mesh's physical minimums so `exact` requests negotiate).
fn det_params(capacity: u64) -> RmsParams {
    RmsParams::builder(capacity, 1024)
        .delay(DelayBound::deterministic(
            SimDuration::from_millis(50),
            SimDuration::from_micros(2),
        ))
        .build()
        .unwrap()
}

#[test]
fn k_paths_orders_by_length_then_hop_sequence() {
    let (net, a, peer, mid_p, mid_b) = parallel_middles();
    let paths = k_paths(&net, a, peer, 3);
    assert_eq!(paths.len(), 3, "three loop-free alternates exist");
    // The two disjoint three-hop paths come first (lower gateway pair
    // breaking the tie), then a longer gateway-chaining detour.
    assert_eq!(paths[0].hops.len(), 3);
    assert_eq!(paths[1].hops.len(), 3);
    assert!(paths[0].hops < paths[1].hops, "fixed (length, hops) order");
    assert!(paths[2].hops.len() > 3, "longer alternates sort last");
    assert_eq!(paths[0].networks[1], mid_p);
    assert_eq!(paths[1].networks[1], mid_b);
}

#[test]
fn floods_propagate_multi_hop_with_split_horizon() {
    let (net, a, peer, _, _) = parallel_middles();
    let mut sim = Sim::new(World::new(net));
    let seed_seq = sim.state.net.host(peer).lsdb.get(a).unwrap().seq;
    flood_from(&mut sim, a);
    sim.run();
    // The far host learned the fresh ad through gateway re-floods.
    let ad = sim.state.net.host(peer).lsdb.get(a).unwrap();
    assert_eq!(ad.seq, seed_seq + 1, "flood crossed the internetwork");
    assert_eq!(ad.links.len(), 1, "a has one interface");
    // Sequence dedup bounds the flood: every host re-floods once, so the
    // counter records exactly one origination.
    let reg = &mut sim.state.net.obs.registry;
    assert_eq!(reg.counter("routing.floods").get(), 1);
}

#[test]
fn saturated_primary_establishes_on_alternate() {
    // Fill the primary middle's deterministic budget (1.25 MB/s * 0.9),
    // then ask for more than the leftovers: the CreateReq is NAK'd at the
    // primary gateway and the creator falls back to the backup path.
    let (net, a, peer, _, mid_b) = parallel_middles();
    let mut sim = Sim::new(World::new(net));
    let big = create_rms(&mut sim, a, peer, &RmsRequest::exact(det_params(48 * 1024))).unwrap();
    sim.run();
    assert!(
        sim.state.created.iter().any(|(_, t, _)| *t == big),
        "saturating stream must establish: {:?}",
        sim.state.create_failed
    );

    let second = create_rms(&mut sim, a, peer, &RmsRequest::exact(det_params(16 * 1024))).unwrap();
    sim.run();
    let rms2 = sim
        .state
        .created
        .iter()
        .find(|(_, t, _)| *t == second)
        .map(|(_, _, r)| *r)
        .expect("second stream establishes on the alternate");
    // It won on the backup path: the alternate-win counter fired and the
    // stream's recorded path crosses the backup middle.
    let path = sim.state.net.host(a).rms.get(&rms2).unwrap().path.clone();
    assert!(path.contains(&mid_b), "path {path:?} must use the backup");
    let reg = &mut sim.state.net.obs.registry;
    assert_eq!(reg.counter("routing.alternate_wins").get(), 1);

    // And the alternate carries data end to end.
    send_on_rms(&mut sim, a, rms2, Message::new(vec![9u8; 256]), None, None).unwrap();
    sim.run();
    assert!(sim
        .state
        .deliveries
        .iter()
        .any(|(h, r)| *h == peer && *r == rms2));
}

#[test]
fn refreshed_headroom_reorders_candidates() {
    // Same saturation, but after a re-flood the creator *knows* the
    // primary is full: constrained selection puts the backup first and no
    // NAK round-trip is needed (no alternate-win, backup path directly).
    let (net, a, peer, _, mid_b) = parallel_middles();
    let mut sim = Sim::new(World::new(net));
    let big = create_rms(&mut sim, a, peer, &RmsRequest::exact(det_params(48 * 1024))).unwrap();
    sim.run();
    assert!(sim.state.created.iter().any(|(_, t, _)| *t == big));
    // The saturated gateways advertise their shrunken headroom.
    let g1 = HostId(1);
    let g2 = HostId(2);
    flood_from(&mut sim, g1);
    flood_from(&mut sim, g2);
    sim.run();

    let request = RmsRequest::exact(det_params(16 * 1024));
    let candidates = candidate_paths(&sim.state.net, a, peer, &request).unwrap();
    assert!(
        candidates[0].networks.contains(&mid_b),
        "headroom-sufficient backup ranks first: {:?}",
        candidates
            .iter()
            .map(|c| (&c.networks, c.min_headroom_bps, c.is_primary))
            .collect::<Vec<_>>()
    );
    assert!(!candidates[0].is_primary);

    let second = create_rms(&mut sim, a, peer, &request).unwrap();
    sim.run();
    let rms2 = sim
        .state
        .created
        .iter()
        .find(|(_, t, _)| *t == second)
        .map(|(_, _, r)| *r)
        .expect("establishes first try on the backup");
    let path = sim.state.net.host(a).rms.get(&rms2).unwrap().path.clone();
    assert!(path.contains(&mid_b));
}

#[test]
fn lsa_headroom_tracks_reservations() {
    let (net, a, peer, _, _) = parallel_middles();
    let mut sim = Sim::new(World::new(net));
    let g1 = HostId(1);
    let before = sim.state.net.host(peer).lsdb.get(g1).unwrap().links[1].headroom_bps;
    let big = create_rms(&mut sim, a, peer, &RmsRequest::exact(det_params(48 * 1024))).unwrap();
    sim.run();
    assert!(sim.state.created.iter().any(|(_, t, _)| *t == big));
    flood_from(&mut sim, g1);
    sim.run();
    let after = sim.state.net.host(peer).lsdb.get(g1).unwrap().links[1].headroom_bps;
    assert!(
        after < before,
        "advertised headroom must shrink with the reservation ({before} -> {after})"
    );
}

// ---------------------------------------------------------------------------
// Determinism over random meshes
// ---------------------------------------------------------------------------

/// Build the same random mesh twice from its spec.
fn build_mesh(n_nets: usize, attachments: &[Vec<bool>]) -> NetState {
    let mut b = TopologyBuilder::new();
    let nets: Vec<NetworkId> = (0..n_nets)
        .map(|i| b.network(NetworkSpec::ethernet(format!("n{i}"))))
        .collect();
    for host_at in attachments {
        let h = b.host();
        let mut any = false;
        for (i, &on) in host_at.iter().enumerate() {
            if on {
                b.attach(h, nets[i]);
                any = true;
            }
        }
        if !any {
            // Isolated hosts are legal but boring; park them on net 0 so
            // the mesh stays connected enough to route.
            b.attach(h, nets[0]);
        }
    }
    b.build()
}

proptest! {
    /// Route tables and alternate orderings are a pure function of the
    /// topology: two independent constructions agree exactly, for every
    /// source and destination.
    #[test]
    fn route_tables_and_alternates_are_deterministic(
        n_nets in 1usize..4,
        attachments in collection::vec(collection::vec(any::<bool>(), 4..5), 2..7),
    ) {
        let attachments: Vec<Vec<bool>> = attachments
            .into_iter()
            .map(|mut v| { v.truncate(n_nets); v })
            .collect();
        let s1 = build_mesh(n_nets, &attachments);
        let s2 = build_mesh(n_nets, &attachments);
        let hosts = s1.hosts.len();
        for src in 0..hosts {
            let src = HostId(src as u32);
            // First-hop tables agree entry for entry.
            let r1 = routing::primary_routes(&s1, src);
            let r2 = routing::primary_routes(&s2, src);
            prop_assert_eq!(
                r1.iter().map(|(d, r)| (*d, *r)).collect::<std::collections::BTreeMap<_, _>>(),
                r2.iter().map(|(d, r)| (*d, *r)).collect::<std::collections::BTreeMap<_, _>>()
            );
            // And the built tables match a fresh computation (build-time
            // seeding introduced no divergence).
            prop_assert_eq!(
                s1.host(src).routes.iter().map(|(d, r)| (*d, *r)).collect::<std::collections::BTreeMap<_, _>>(),
                r1.iter().map(|(d, r)| (*d, *r)).collect::<std::collections::BTreeMap<_, _>>()
            );
            for dst in 0..hosts {
                if src.0 == dst as u32 {
                    continue;
                }
                let dst = HostId(dst as u32);
                let p1 = k_paths(&s1, src, dst, 3);
                let p2 = k_paths(&s2, src, dst, 3);
                prop_assert_eq!(&p1, &p2, "alternate ordering diverged");
                // Every alternate is loop-free and ends at the target.
                for p in &p1 {
                    prop_assert_eq!(*p.hops.last().unwrap(), dst);
                    let mut seen = p.hops.clone();
                    seen.sort_unstable();
                    seen.dedup();
                    prop_assert_eq!(seen.len(), p.hops.len(), "loop in {:?}", p.hops);
                    prop_assert!(!p.hops.contains(&src));
                }
            }
        }
    }

    /// Timer-free invariant: the first alternate returned by `k_paths` is
    /// exactly the BFS first-hop table's path prefix (same first hop), so
    /// datagram forwarding and RMS establishment agree on the primary.
    #[test]
    fn first_alternate_matches_primary_table(
        attachments in collection::vec(collection::vec(any::<bool>(), 3..4), 2..6),
    ) {
        let s = build_mesh(3, &attachments);
        for src in 0..s.hosts.len() {
            let src = HostId(src as u32);
            let table = routing::primary_routes(&s, src);
            for dst in 0..s.hosts.len() {
                let dst = HostId(dst as u32);
                if src == dst { continue; }
                let paths = k_paths(&s, src, dst, 3);
                match table.get(&dst) {
                    Some(route) => {
                        prop_assert!(!paths.is_empty(), "table has a route, k_paths none");
                        prop_assert_eq!(paths[0].hops[0], route.next_hop);
                    }
                    None => prop_assert!(paths.is_empty(), "k_paths found {:?} with no table route", paths),
                }
            }
        }
    }
}
