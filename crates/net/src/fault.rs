//! Applying [`FaultPlan`]s to a live network simulation.
//!
//! [`dash_sim::fault`] describes *what* goes wrong and when; this module
//! knows *how* each fault lands on the network state: dead networks fail
//! RMSs and reroute (§2 property 3), partitions filter the wire, burst
//! models replace i.i.d. loss, stalls freeze transmitters, and host
//! crashes wipe per-host protocol state. Every application is announced as
//! an [`ObsEvent::FaultInjected`] so chaos harnesses can account for
//! injected faults in the metric registry.

use dash_sim::engine::Sim;
use dash_sim::fault::{FaultKind, FaultPlan};
use dash_sim::obs::ObsEvent;
use dash_sim::time::SimDuration;
use rms_core::error::FailReason;

use crate::ids::{HostId, NetRmsId, NetworkId};
use crate::pipeline::{fail_network, restore_network, start_tx};
use crate::routing;
use crate::state::{NetRmsEvent, NetWorld};

/// Schedule every event of `plan` against the simulation. Events fire at
/// their recorded times in plan order (ties broken by scheduling sequence,
/// which is deterministic).
pub fn schedule_fault_plan<W: NetWorld>(sim: &mut Sim<W>, plan: &FaultPlan) {
    for ev in &plan.events {
        let kind = ev.kind.clone();
        sim.schedule_at(ev.at, move |sim| apply_fault(sim, &kind));
    }
}

/// Apply a single fault to the network right now.
pub fn apply_fault<W: NetWorld>(sim: &mut Sim<W>, kind: &FaultKind) {
    let now = sim.now();
    {
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs
                .emit(now, ObsEvent::FaultInjected { kind: kind.name() });
        }
    }
    match kind {
        FaultKind::NetworkDown { network } => fail_network(sim, NetworkId(*network)),
        FaultKind::NetworkUp { network } => restore_network(sim, NetworkId(*network)),
        FaultKind::Partition { a, b } => {
            sim.state.net().partition(HostId(*a), HostId(*b));
            // Partitions filter the wire, not the graph (SPF ignores
            // them), but a re-flood refreshes the headroom picture so
            // constrained selection reacts.
            routing::flood_from(sim, HostId(*a));
            routing::flood_from(sim, HostId(*b));
        }
        FaultKind::HealPartition { a, b } => {
            sim.state.net().heal_partition(HostId(*a), HostId(*b));
            routing::flood_from(sim, HostId(*a));
            routing::flood_from(sim, HostId(*b));
        }
        FaultKind::BurstLossStart { network, model } => {
            sim.state.net().network_mut(NetworkId(*network)).burst = Some(model.clone());
        }
        FaultKind::BurstLossEnd { network } => {
            sim.state.net().network_mut(NetworkId(*network)).burst = None;
        }
        FaultKind::IfaceStall {
            host,
            network,
            duration,
        } => stall_iface(sim, HostId(*host), NetworkId(*network), *duration),
        FaultKind::HostCrash { host } => crash_host(sim, HostId(*host)),
        FaultKind::HostRestart { host } => restart_host(sim, HostId(*host)),
    }
}

/// Freeze the transmitter `host` has on `network` for `duration`. Queued
/// packets wait (nothing is dropped by the stall itself) and transmission
/// resumes automatically when the stall lifts.
pub fn stall_iface<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    network: NetworkId,
    duration: SimDuration,
) {
    let now = sim.now();
    let until = now.saturating_add(duration);
    let net = sim.state.net();
    let Some(idx) = net.host(host).iface_on(network) else {
        return;
    };
    let iface = &mut net.host_mut(host).ifaces[idx];
    if until > iface.stalled_until {
        iface.stalled_until = until;
    }
    // Kick the transmitter back to life once the stall expires; start_tx
    // is a no-op if a concurrent transmission already restarted it.
    sim.schedule_at(until, move |sim| start_tx(sim, host, idx));
}

/// Crash `host`: its transmit queues are discarded, its creation attempts
/// and invites are abandoned (timers cancelled), every local RMS endpoint
/// fails with [`FailReason::ResourcesRevoked`], and routing tables are
/// marked dirty so the crashed host is no longer used as transit (its
/// neighbours re-flood to spread the word). Idempotent.
pub fn crash_host<W: NetWorld>(sim: &mut Sim<W>, host: HostId) {
    let now = sim.now();
    let mut failures: Vec<NetRmsId> = Vec::new();
    {
        let net = sim.state.net();
        let h = net.host_mut(host);
        if !h.up {
            return;
        }
        h.up = false;
        for iface in &mut h.ifaces {
            // Pending finish_tx events still fire; they see the host down,
            // treat the packet as lost, and release the transmitter.
            iface.clear();
        }
        for (_, p) in h.pending.drain() {
            if let Some(t) = p.timer {
                t.cancel();
            }
        }
        for (_, i) in h.invites.drain() {
            if let Some(t) = i.timer {
                t.cancel();
            }
        }
        for (id, st) in h.rms.iter_mut() {
            if !st.failed {
                st.failed = true;
                failures.push(*id);
            }
        }
        // `rms` is a HashMap: sort the notifications for deterministic
        // replay.
        failures.sort();
        routing::mark_routes_dirty(net, now);
        if net.obs.is_active() {
            net.obs.emit(now, ObsEvent::HostCrashed { host: host.0 });
        }
    }
    // The crashed host's up neighbours witnessed the failure: they
    // re-flood (ascending host order for deterministic replay).
    let witnesses: Vec<HostId> = {
        let net = sim.state.net_ref();
        let mut seen = std::collections::BTreeSet::new();
        for iface in &net.host(host).ifaces {
            for peer in &net.network(iface.network).attached {
                if *peer != host && net.host(*peer).up {
                    seen.insert(*peer);
                }
            }
        }
        seen.into_iter().collect()
    };
    for w in witnesses {
        routing::flood_from(sim, w);
    }
    for rms in failures {
        W::rms_event(
            sim,
            host,
            NetRmsEvent::Failed {
                rms,
                reason: FailReason::ResourcesRevoked,
            },
        );
    }
}

/// Bring a crashed host back. Its protocol state starts empty (RMSs lost
/// in the crash stay failed); routing may use it as transit again once it
/// re-announces itself by flooding fresh link state. Idempotent.
pub fn restart_host<W: NetWorld>(sim: &mut Sim<W>, host: HostId) {
    let now = sim.now();
    {
        let net = sim.state.net();
        let h = net.host_mut(host);
        if h.up {
            return;
        }
        h.up = true;
        routing::mark_routes_dirty(net, now);
        if net.obs.is_active() {
            net.obs.emit(now, ObsEvent::HostRestarted { host: host.0 });
        }
    }
    routing::flood_from(sim, host);
}
