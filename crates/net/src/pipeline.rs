//! The network-layer protocol engine: RMS creation with hop-by-hop
//! admission, deadline-queued transmission, forwarding, and delivery.
//!
//! All functions are generic over the world `W: NetWorld`, so the
//! subtransport layer (and test harnesses) stack on top without this crate
//! knowing their shape.

use dash_security::cipher::{decrypt, encrypt, Key};
use dash_security::mac;
use dash_security::suite::{MechanismPlan, NetworkCapabilities};
use dash_sim::engine::Sim;
use dash_sim::obs::ObsEvent;
use dash_sim::time::{SimDuration, SimTime};
use rms_core::compat::{negotiate, RmsRequest, ServiceTable};
use rms_core::error::{FailReason, RejectReason, RmsError};
use rms_core::message::Message;
use rms_core::params::{BitErrorRate, Reliability};
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;

use crate::ids::{CreateToken, HostId, NetRmsId, NetworkId};
use crate::network::WireOutcome;
use crate::packet::{DataPacket, NakReason, Packet, PacketKind, SourceRoute};
use crate::rms::{Buffered, NetRms, RmsRole, REORDER_FAIL_THRESHOLD};
use crate::routing;
use crate::state::{NetRmsEvent, NetState, NetWorld, PendingCreate, PendingInvite, Route};

// ---------------------------------------------------------------------------
// Path-wide negotiation helpers
// ---------------------------------------------------------------------------

/// Combine the service tables of every network along `path` (store-and-
/// forward: fixed and per-byte delays add, capacities take the minimum,
/// error rates accumulate, the weakest kind wins). Only combinations
/// supported by *every* hop survive.
pub fn combined_service_table<W: NetWorld>(
    state: &W,
    path: &[(HostId, usize, NetworkId, HostId)],
) -> ServiceTable {
    combined_service_table_on(state.net_ref(), path)
}

/// [`combined_service_table`] against a bare [`NetState`] (used by the
/// routing subsystem, which negotiates per candidate path).
pub fn combined_service_table_on(
    net: &NetState,
    path: &[(HostId, usize, NetworkId, HostId)],
) -> ServiceTable {
    let mut out = ServiceTable::new();
    if path.is_empty() {
        return out;
    }
    let tables: Vec<ServiceTable> = path
        .iter()
        .map(|(_, _, n, _)| net.network(*n).spec.service_table())
        .collect();
    for (rel, sec, first) in tables[0].iter() {
        let mut acc = *first;
        let mut ok = true;
        for t in &tables[1..] {
            match t.limits(*rel, *sec) {
                Some(l) => {
                    acc.min_fixed_delay = acc.min_fixed_delay.saturating_add(l.min_fixed_delay);
                    acc.min_per_byte_delay =
                        acc.min_per_byte_delay.saturating_add(l.min_per_byte_delay);
                    acc.max_capacity = acc.max_capacity.min(l.max_capacity);
                    acc.max_message_size = acc.max_message_size.min(l.max_message_size);
                    let combined_ber =
                        (acc.min_error_rate.rate() + l.min_error_rate.rate()).clamp(0.0, 1.0);
                    acc.min_error_rate =
                        BitErrorRate::new(combined_ber).expect("valid combined rate");
                    acc.max_kind_strength = acc.max_kind_strength.min(l.max_kind_strength);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.support(*rel, *sec, acc);
        }
    }
    out
}

/// Combine the security capabilities seen along `path`: the conservative
/// intersection (everything must be trusted for the path to be trusted; the
/// raw error rates accumulate).
pub fn combined_capabilities<W: NetWorld>(
    state: &W,
    path: &[(HostId, usize, NetworkId, HostId)],
) -> NetworkCapabilities {
    combined_capabilities_on(state.net_ref(), path)
}

/// [`combined_capabilities`] against a bare [`NetState`].
pub fn combined_capabilities_on(
    net: &NetState,
    path: &[(HostId, usize, NetworkId, HostId)],
) -> NetworkCapabilities {
    let mut caps = NetworkCapabilities {
        trusted: true,
        link_encryption: true,
        hardware_checksum: true,
        physical_broadcast: true,
        raw_ber: 0.0,
    };
    for (_, _, n, _) in path {
        let c = net.network(*n).spec.caps;
        caps.trusted &= c.trusted;
        caps.link_encryption &= c.link_encryption;
        caps.hardware_checksum &= c.hardware_checksum;
        caps.physical_broadcast &= c.physical_broadcast;
        caps.raw_ber = (caps.raw_ber + c.raw_ber).clamp(0.0, 1.0);
    }
    caps
}

fn nak_to_reject(reason: NakReason) -> RejectReason {
    match reason {
        NakReason::Admission => RejectReason::AdmissionDenied {
            detail: "a hop's admission control refused the reservation".into(),
        },
        NakReason::PeerRefused => RejectReason::PeerRejected,
        NakReason::NoRoute => RejectReason::NoRoute,
    }
}

// ---------------------------------------------------------------------------
// RMS creation (sender side)
// ---------------------------------------------------------------------------

/// Create a network RMS from `creator` (the data **sender**) to `peer` (the
/// data receiver). The routing subsystem resolves up to
/// [`routing::K_ALTERNATES`] loop-free candidate paths, each negotiated
/// against its own combined service table (§2.4); admission control then
/// reserves hop by hop as the `CreateReq` travels the chosen path (§2.3),
/// and a NAK makes the creator fall back to the next alternate instead of
/// failing outright. The result arrives asynchronously as a
/// [`NetRmsEvent::Created`] / [`NetRmsEvent::CreateFailed`] carrying the
/// returned token.
///
/// # Errors
///
/// Fails synchronously if there is no route or negotiation cannot succeed
/// on any candidate path.
pub fn create_rms<W: NetWorld>(
    sim: &mut Sim<W>,
    creator: HostId,
    peer: HostId,
    request: &RmsRequest,
) -> Result<CreateToken, RmsError> {
    if creator == peer {
        return Err(RmsError::CreationRejected(RejectReason::NoRoute));
    }
    let alternates = routing::candidate_paths(sim.state.net_ref(), creator, peer, request)?;

    let net = sim.state.net();
    let token = net.alloc_token();
    let rms = net.alloc_rms_id();
    let key = Key(net.rng.next_u64());
    let route_gen = net.route_generation;
    let first = &alternates[0];
    let (params, plan) = (first.params.clone(), first.plan);
    net.host_mut(creator).pending.insert(
        token,
        PendingCreate {
            rms,
            peer,
            params,
            attempts: 0,
            timer: None,
            invite: None,
            plan,
            key,
            request: request.clone(),
            alternates,
            alt_idx: 0,
            route_gen,
        },
    );
    // Deferred so the caller records the returned token before any
    // failure/success event can fire.
    sim.schedule_in(SimDuration::ZERO, move |sim| {
        start_create_attempt(sim, creator, token);
    });
    Ok(token)
}

/// Create a network RMS with `creator` as the data **receiver** (§2.4: the
/// creator may act as either end). Sends an `Invite`; the peer initiates
/// the reserving `CreateReq` back toward us. Completion surfaces as
/// [`NetRmsEvent::InboundCreated`] with `invite = Some(token)` (or
/// [`NetRmsEvent::InviteFailed`]).
///
/// # Errors
///
/// Fails synchronously if there is no route or negotiation cannot succeed.
pub fn create_rms_as_receiver<W: NetWorld>(
    sim: &mut Sim<W>,
    creator: HostId,
    peer: HostId,
    request: &RmsRequest,
) -> Result<CreateToken, RmsError> {
    if creator == peer {
        return Err(RmsError::CreationRejected(RejectReason::NoRoute));
    }
    // Data flows peer -> creator; negotiate along that direction.
    let path = sim
        .state
        .net_ref()
        .path(peer, creator)
        .ok_or(RmsError::CreationRejected(RejectReason::NoRoute))?;
    let table = combined_service_table(&sim.state, &path);
    let params = negotiate(&table, request)?.shared();

    let token = sim.state.net().alloc_token();
    sim.state.net().host_mut(creator).invites.insert(
        token,
        PendingInvite {
            peer,
            params: params.clone(),
            timer: None,
            attempts: 0,
        },
    );
    sim.schedule_in(SimDuration::ZERO, move |sim| {
        start_invite_attempt(sim, creator, token);
    });
    Ok(token)
}

fn start_invite_attempt<W: NetWorld>(sim: &mut Sim<W>, creator: HostId, token: CreateToken) {
    let now = sim.now();
    let (peer, params, attempts, timeout, retries) = {
        let net = sim.state.net();
        let timeout = net.config.create_timeout;
        let retries = net.config.create_retries;
        let inv = match net.host_mut(creator).invites.get_mut(&token) {
            Some(i) => i,
            None => return,
        };
        inv.attempts += 1;
        (inv.peer, inv.params.clone(), inv.attempts, timeout, retries)
    };
    if attempts > retries {
        sim.state.net().host_mut(creator).invites.remove(&token);
        W::rms_event(
            sim,
            creator,
            NetRmsEvent::InviteFailed {
                token,
                reason: RejectReason::Timeout,
            },
        );
        return;
    }
    let packet = Packet {
        src: creator,
        dst: peer,
        kind: PacketKind::Invite { token, params },
        deadline: now,
        sent_at: now,
        corrupted: false,
        hops: 0,
        reliable: true,
        next_plan: None,
        source_route: None,
        next_hop: None,
    };
    route_and_enqueue(sim, creator, packet);
    let timer = sim.schedule_timer(timeout, move |sim| {
        // Retry while the invite is still pending (the CreateReq arriving
        // at us removes it).
        start_invite_attempt(sim, creator, token);
    });
    if let Some(inv) = sim.state.net().host_mut(creator).invites.get_mut(&token) {
        inv.timer = Some(timer);
    } else {
        timer.cancel();
    }
}

fn start_create_attempt<W: NetWorld>(sim: &mut Sim<W>, creator: HostId, token: CreateToken) {
    let now = sim.now();
    let (rms, peer, invite, attempts, timeout, retries) = {
        let net = sim.state.net();
        let timeout = net.config.create_timeout;
        let retries = net.config.create_retries;
        let p = match net.host_mut(creator).pending.get_mut(&token) {
            Some(p) => p,
            None => return,
        };
        p.attempts += 1;
        (p.rms, p.peer, p.invite, p.attempts, timeout, retries)
    };
    if attempts > retries {
        // Give up: clean any partial reservations and report.
        sim.state.net().host_mut(creator).pending.remove(&token);
        release_local_and_send_release(sim, creator, rms, peer);
        W::rms_event(
            sim,
            creator,
            NetRmsEvent::CreateFailed {
                token,
                reason: RejectReason::Timeout,
            },
        );
        return;
    }

    // A retry timer may fire after the topology changed under us (network
    // death, host crash): candidate paths captured at create time can then
    // name dead first hops. Detect staleness via the route generation and
    // re-resolve alternates from the original request instead of blindly
    // resending into a black hole.
    let stale = {
        let net = sim.state.net_ref();
        net.host(creator)
            .pending
            .get(&token)
            .is_some_and(|p| p.route_gen != net.route_generation)
    };
    if stale {
        {
            let net = sim.state.net();
            if let Some((iface, params)) = net.host_mut(creator).reservations.remove(&rms) {
                net.host_mut(creator).ifaces[iface].ledger.release(&params);
            }
            net.host_mut(creator).rms_next.remove(&rms);
        }
        let request = match sim.state.net_ref().host(creator).pending.get(&token) {
            Some(p) => p.request.clone(),
            None => return,
        };
        match routing::candidate_paths(sim.state.net_ref(), creator, peer, &request) {
            Ok(candidates) => {
                let gen = sim.state.net_ref().route_generation;
                let net = sim.state.net();
                if let Some(p) = net.host_mut(creator).pending.get_mut(&token) {
                    p.params = candidates[0].params.clone();
                    p.plan = candidates[0].plan;
                    p.alternates = candidates;
                    p.alt_idx = 0;
                    p.route_gen = gen;
                }
            }
            Err(err) => {
                sim.state.net().host_mut(creator).pending.remove(&token);
                let reason = match err {
                    RmsError::CreationRejected(r) => r,
                    _ => RejectReason::NoRoute,
                };
                W::rms_event(sim, creator, NetRmsEvent::CreateFailed { token, reason });
                return;
            }
        }
    }

    // Walk the alternates from the current cursor: reserve on our own
    // outbound interface (hop 0), idempotently, advancing past candidates
    // whose first hop is down or refuses admission.
    let mut admission_detail: Option<String> = None;
    let chosen = loop {
        let (first_net_id, first_hop, params, plan) = {
            let net = sim.state.net_ref();
            let p = match net.host(creator).pending.get(&token) {
                Some(p) => p,
                None => return,
            };
            match p.alternates.get(p.alt_idx) {
                Some(c) => (c.networks[0], c.hops[0], c.params.clone(), c.plan),
                None => break None,
            }
        };
        let net = sim.state.net();
        if net.network(first_net_id).down {
            if let Some((iface, params)) = net.host_mut(creator).reservations.remove(&rms) {
                net.host_mut(creator).ifaces[iface].ledger.release(&params);
            }
            net.host_mut(creator).rms_next.remove(&rms);
            if let Some(p) = net.host_mut(creator).pending.get_mut(&token) {
                p.alt_idx += 1;
            }
            continue;
        }
        let iface = match net.host(creator).iface_on(first_net_id) {
            Some(i) => i,
            None => {
                if let Some(p) = net.host_mut(creator).pending.get_mut(&token) {
                    p.alt_idx += 1;
                }
                continue;
            }
        };
        let force = net.config.debug_force_admission;
        let host = net.host_mut(creator);
        if !host.reservations.contains_key(&rms) {
            let ledger = &mut host.ifaces[iface].ledger;
            let admitted = if force {
                ledger.force_admit(&params)
            } else {
                ledger.admit(&params)
            };
            let ok = admitted.is_admitted();
            let (reserved_bps, budget_bps) =
                (ledger.reserved_bps(), ledger.deterministic_budget_bps());
            if sim.state.net().obs.is_active() {
                sim.state.net().obs.emit(
                    now,
                    ObsEvent::AdmissionDecision {
                        host: creator.0,
                        admitted: ok,
                        reserved_bps,
                        budget_bps,
                    },
                );
            }
            if !ok {
                let detail = match admitted {
                    rms_core::admission::Admission::Denied { detail } => detail,
                    rms_core::admission::Admission::Admitted => unreachable!(),
                };
                admission_detail = Some(detail);
                if let Some(p) = sim.state.net().host_mut(creator).pending.get_mut(&token) {
                    p.alt_idx += 1;
                }
                continue;
            }
            sim.state
                .net()
                .host_mut(creator)
                .reservations
                .insert(rms, (iface, params.clone()));
        }
        let net = sim.state.net();
        net.host_mut(creator).rms_next.insert(
            rms,
            Route {
                iface,
                next_hop: first_hop,
            },
        );
        if let Some(p) = net.host_mut(creator).pending.get_mut(&token) {
            p.params = params.clone();
            p.plan = plan;
        }
        break Some((first_net_id, params, plan));
    };
    let Some((first_net, params, plan)) = chosen else {
        sim.state.net().host_mut(creator).pending.remove(&token);
        let reason = match admission_detail {
            Some(detail) => RejectReason::AdmissionDenied { detail },
            None => RejectReason::NoRoute,
        };
        W::rms_event(sim, creator, NetRmsEvent::CreateFailed { token, reason });
        return;
    };

    let (key, source_route) = {
        let net = sim.state.net_ref();
        let p = match net.host(creator).pending.get(&token) {
            Some(p) => p,
            None => return,
        };
        let c = &p.alternates[p.alt_idx];
        (
            p.key,
            SourceRoute {
                hops: c.hops.clone(),
                networks: c.networks.clone(),
                next: 0,
            },
        )
    };
    if sim.state.net().obs.is_active() {
        // Announce the pinned source route (creator first) so an external
        // oracle can check the chosen alternate is loop-free.
        let mut hops: Vec<u32> = Vec::with_capacity(source_route.hops.len() + 1);
        hops.push(creator.0);
        hops.extend(source_route.hops.iter().map(|h| h.0));
        sim.state.net().obs.emit(
            now,
            ObsEvent::RoutingPathPinned {
                host: creator.0,
                hops,
            },
        );
    }
    let packet = Packet {
        src: creator,
        dst: peer,
        kind: PacketKind::CreateReq {
            token,
            rms,
            params,
            path: vec![first_net],
            invite,
        },
        deadline: now,
        sent_at: now,
        corrupted: false,
        hops: 0,
        reliable: true,
        next_plan: Some((plan, key)),
        source_route: Some(source_route),
        next_hop: None,
    };
    route_and_enqueue(sim, creator, packet);
    let timer = sim.schedule_timer(timeout, move |sim| {
        start_create_attempt(sim, creator, token);
    });
    if let Some(p) = sim.state.net().host_mut(creator).pending.get_mut(&token) {
        p.timer = Some(timer);
    } else {
        timer.cancel();
    }
}

fn release_local_and_send_release<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    rms: NetRmsId,
    peer: HostId,
) {
    let now = sim.now();
    let pin = {
        let net = sim.state.net();
        let pin = net.host_mut(host).rms_next.remove(&rms);
        if let Some((iface, params)) = net.host_mut(host).reservations.remove(&rms) {
            net.host_mut(host).ifaces[iface].ledger.release(&params);
        }
        pin
    };
    let mut packet = Packet {
        src: host,
        dst: peer,
        kind: PacketKind::Release { rms },
        deadline: now,
        sent_at: now,
        corrupted: false,
        hops: 0,
        reliable: true,
        next_plan: None,
        source_route: None,
        next_hop: None,
    };
    // Tear down along the pinned path when we still have it, so the
    // release follows the reservations it is undoing even after routes
    // moved elsewhere.
    match pin {
        Some(route) => {
            packet.next_hop = Some(route.next_hop);
            enqueue_on(sim, host, route.iface, packet);
        }
        None => {
            route_and_enqueue(sim, host, packet);
        }
    }
}

/// Close an RMS from its sender side: releases reservations along the path
/// and notifies the receiver ([`NetRmsEvent::Closed`] at the peer).
pub fn close_rms<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    rms: NetRmsId,
) -> Result<(), RmsError> {
    let peer = {
        let net = sim.state.net();
        let state = net
            .host_mut(host)
            .rms
            .remove(&rms)
            .ok_or(RmsError::UnknownStream)?;
        state.peer
    };
    release_local_and_send_release(sim, host, rms, peer);
    Ok(())
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

/// Send a message on a sending RMS endpoint.
///
/// `tx_deadline` is the transmission deadline used for queueing at every
/// hop (§4.1); it defaults to "now" (maximally urgent) and is clamped to be
/// monotone per stream, preserving in-order delivery (§4.3.1). `sent_at`
/// lets a higher layer date the delay clock from the original client send
/// operation; it defaults to now.
///
/// # Errors
///
/// [`RmsError`] if the stream is unknown, failed, not a sender endpoint, or
/// the message exceeds the maximum message size.
pub fn send_on_rms<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    rms: NetRmsId,
    msg: Message,
    tx_deadline: Option<SimTime>,
    sent_at: Option<SimTime>,
) -> Result<(), RmsError> {
    let now = sim.now();
    let (seq, params, plan, key, peer, deadline) = {
        let net = sim.state.net();
        let state = net
            .host_mut(host)
            .rms
            .get_mut(&rms)
            .ok_or(RmsError::UnknownStream)?;
        if state.role != RmsRole::Sender {
            return Err(RmsError::WrongDirection);
        }
        if state.failed {
            return Err(RmsError::Failed(FailReason::NetworkDown));
        }
        if msg.len() as u64 > state.params.max_message_size {
            return Err(RmsError::MessageTooLarge {
                size: msg.len() as u64,
                limit: state.params.max_message_size,
            });
        }
        let mut deadline = tx_deadline.unwrap_or(now);
        // §4.3.1: per-stream transmission deadlines must be monotone so the
        // network's deadline-ordered delivery preserves message order.
        if deadline < state.last_tx_deadline {
            deadline = state.last_tx_deadline;
        }
        state.last_tx_deadline = deadline;
        // Interfaces order packets by *delivery* deadline — the handoff
        // deadline plus this stream's own bound. This is what makes §2.5's
        // example work: a low-delay stream's packets overtake high-delay
        // packets "that would otherwise cause it to be delivered late",
        // even when both were handed over equally promptly. The offset is
        // evaluated at the maximum message size so it is constant per
        // stream, preserving the §4.3.1 ordering guarantee.
        let queue_deadline =
            deadline.saturating_add(state.params.delay.bound_for(state.params.max_message_size));
        (
            state.alloc_seq(),
            state.params.clone(),
            state.plan,
            state.key,
            state.peer,
            queue_deadline,
        )
    };
    let sent_at = sent_at.unwrap_or(now);
    let len = msg.len() as u64;
    {
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::NetSend {
                    host: host.0,
                    rms: rms.0,
                    bytes: len,
                    span: msg.span,
                },
            );
        }
    }
    let cost = sim
        .state
        .net_ref()
        .config
        .per_packet_cpu
        .plus(plan.cost())
        .cost_for(len);
    // §4.1: a stage's deadline is the *current* real time plus the delay
    // allocated to the stage (not the origin time plus the total bound —
    // retransmissions would otherwise carry overdue deadlines and starve
    // everything else under EDF). Clamped monotone per stream so a short
    // message cannot overtake its predecessors.
    let cpu_deadline = {
        let d = now.saturating_add(params.delay.bound_for(len));
        let state = sim
            .state
            .net()
            .host_mut(host)
            .rms
            .get_mut(&rms)
            .expect("checked above");
        let d = d.max(state.last_send_job_deadline);
        state.last_send_job_deadline = d;
        d
    };
    W::charge_cpu(
        sim,
        host,
        cost,
        cpu_deadline,
        rms.0,
        Box::new(move |sim| {
            // The stream may have failed while the CPU job waited.
            {
                let net = sim.state.net();
                match net.host(host).rms.get(&rms) {
                    Some(s) if !s.failed => {}
                    _ => return,
                }
            }
            let source = msg.source;
            let target = msg.target;
            let span = msg.span;
            // Secured paths flatten the body once for the byte-stream
            // transforms; the common unsecured path forwards the sender's
            // segments untouched.
            let payload = if plan.encrypt {
                WireMsg::from_bytes(encrypt(key, seq, &msg.payload()))
            } else {
                msg.into_wire()
            };
            let tag = plan.mac.then(|| {
                let context = seq ^ source.map(|l| l.0).unwrap_or(0).rotate_left(17);
                mac::sign(key, context, &payload.contiguous()).0
            });
            let checksum = plan.checksum.map(|alg| alg.compute(&payload.contiguous()));
            let packet = Packet {
                src: host,
                dst: peer,
                kind: PacketKind::Data(DataPacket {
                    rms,
                    seq,
                    payload,
                    source,
                    target,
                    mac: tag,
                    checksum,
                    span,
                }),
                deadline,
                sent_at,
                corrupted: false,
                hops: 0,
                reliable: params.reliability == Reliability::Reliable,
                next_plan: None,
                source_route: None,
                next_hop: None,
            };
            route_and_enqueue(sim, host, packet);
        }),
    );
    Ok(())
}

/// Send a raw datagram outside any RMS (the baseline primitive, §1).
/// Queued FIFO-equivalent (deadline = now) and never reserved for.
pub fn send_datagram<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    dst: HostId,
    proto: u16,
    payload: WireMsg,
) {
    let now = sim.now();
    let packet = Packet {
        src: host,
        dst,
        kind: PacketKind::Raw { proto, payload },
        deadline: now,
        sent_at: now,
        corrupted: false,
        hops: 0,
        reliable: false,
        next_plan: None,
        source_route: None,
        next_hop: None,
    };
    route_and_enqueue(sim, host, packet);
}

// ---------------------------------------------------------------------------
// Transmission machinery
// ---------------------------------------------------------------------------

/// Route `packet` out of `host` and enqueue it on the proper interface,
/// starting the transmitter if idle. Loopback destinations deliver
/// immediately. Returns `false` if the packet was dropped (no route or
/// queue overflow).
///
/// Resolution order: a pinned [`SourceRoute`] (creation traffic) wins, then
/// the per-RMS next-hop pin established at admission time (data and
/// release follow their reservations), then the host's first-hop table —
/// recomputed on demand if reconvergence marked it dirty.
pub fn route_and_enqueue<W: NetWorld>(sim: &mut Sim<W>, host: HostId, mut packet: Packet) -> bool {
    let now = sim.now();
    if !sim.state.net_ref().host(host).up {
        // A crashed host originates and forwards nothing.
        sim.state.net().stats.wire_drops.incr();
        return false;
    }
    if packet.dst == host {
        // Loopback: no wire involved.
        sim.schedule_in(SimDuration::ZERO, move |sim| on_arrival(sim, host, packet));
        return true;
    }
    let route = if let Some(sr) = packet.source_route.as_ref() {
        let net = sim.state.net_ref();
        sr.next_network()
            .and_then(|n| net.host(host).iface_on(n))
            .zip(sr.next_hop())
            .map(|(iface, next_hop)| Route { iface, next_hop })
    } else {
        let pinned = match &packet.kind {
            PacketKind::Data(d) => sim.state.net_ref().host(host).rms_next.get(&d.rms).copied(),
            PacketKind::Release { rms } => {
                sim.state.net_ref().host(host).rms_next.get(rms).copied()
            }
            _ => None,
        };
        pinned.or_else(|| {
            routing::ensure_host_routes(sim.state.net(), now, host);
            sim.state
                .net_ref()
                .host(host)
                .routes
                .get(&packet.dst)
                .copied()
        })
    };
    let route = match route {
        Some(r) => r,
        None => {
            sim.state.net().stats.no_route_drops.incr();
            return false;
        }
    };
    // Freeze the next hop now: by the time the transmitter finishes, the
    // routing table may point somewhere not even on this network.
    packet.next_hop = Some(route.next_hop);
    enqueue_on(sim, host, route.iface, packet)
}

/// Enqueue `packet` on `host`'s interface `iface_idx` (no route lookup —
/// the caller resolved, pinned, or flooded). Handles stats, observability,
/// overflow quench, and kicks the transmitter. Returns `false` on overflow.
pub(crate) fn enqueue_on<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    iface_idx: usize,
    packet: Packet,
) -> bool {
    let now = sim.now();
    let (accepted, quench) = {
        let net = sim.state.net();
        net.stats.packets_sent.incr();
        let is_raw = matches!(packet.kind, PacketKind::Raw { .. });
        let src = packet.src;
        let proto = match &packet.kind {
            PacketKind::Raw { proto, .. } => *proto,
            _ => 0,
        };
        let dst = packet.dst;
        let span = packet.span();
        let ok = net.host_mut(host).ifaces[iface_idx].enqueue(now, packet);
        if net.obs.is_active() {
            net.obs.emit(now, ObsEvent::NetPacketSent { host: host.0 });
            if ok {
                let iface = &net.host(host).ifaces[iface_idx];
                let (queued_packets, queued_bytes) = (iface.queued_packets(), iface.queued_bytes());
                net.obs.emit(
                    now,
                    ObsEvent::IfaceEnqueue {
                        host: host.0,
                        iface: iface_idx,
                        span,
                        queued_packets,
                        queued_bytes,
                    },
                );
            } else {
                net.obs.emit(
                    now,
                    ObsEvent::IfaceDrop {
                        host: host.0,
                        iface: iface_idx,
                    },
                );
            }
        }
        if !ok {
            net.stats.overflow_drops.incr();
            let quench =
                (is_raw && net.config.quench_enabled && src != host).then_some((src, proto, dst));
            (false, quench)
        } else {
            (true, None)
        }
    };
    if let Some((to, proto, dropped_dst)) = quench {
        send_quench(sim, host, to, proto, dropped_dst);
    }
    if accepted {
        start_tx(sim, host, iface_idx);
    }
    accepted
}

fn send_quench<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    to: HostId,
    proto: u16,
    dropped_dst: HostId,
) {
    let now = sim.now();
    sim.state.net().stats.quenches_sent.incr();
    let packet = Packet {
        src: host,
        dst: to,
        kind: PacketKind::Quench { proto, dropped_dst },
        deadline: now,
        sent_at: now,
        corrupted: false,
        hops: 0,
        reliable: false,
        next_plan: None,
        source_route: None,
        next_hop: None,
    };
    route_and_enqueue(sim, host, packet);
}

/// Start transmitting from `host`'s interface `iface_idx` if it is idle and
/// has queued packets.
pub fn start_tx<W: NetWorld>(sim: &mut Sim<W>, host: HostId, iface_idx: usize) {
    let now = sim.now();
    let (packet, network_id, tx_time) = {
        let net = sim.state.net();
        let iface = &mut net.host_mut(host).ifaces[iface_idx];
        if iface.is_busy() || iface.is_stalled(now) {
            // A stalled transmitter holds its queue; `stall_iface` schedules
            // the restart kick when the stall expires.
            return;
        }
        let packet = match iface.dequeue(now) {
            Some(p) => p,
            None => return,
        };
        iface.set_busy(true);
        let network_id = iface.network;
        let bytes = packet.wire_bytes();
        iface.stats.tx_packets.incr();
        iface.stats.tx_bytes.add(bytes);
        let (queued_packets, queued_bytes) = (iface.queued_packets(), iface.queued_bytes());
        let rate = net.network(network_id).spec.rate_bps;
        let tx_time = SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate);
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::IfaceDequeue {
                    host: host.0,
                    iface: iface_idx,
                    span: packet.span(),
                    queued_packets,
                    queued_bytes,
                },
            );
        }
        (packet, network_id, tx_time)
    };
    sim.schedule_in(tx_time, move |sim| {
        finish_tx(sim, host, iface_idx, network_id, packet);
    });
}

fn finish_tx<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    iface_idx: usize,
    network_id: NetworkId,
    mut packet: Packet,
) {
    // Wire effects.
    let (outcome, next_hop) = {
        let net = sim.state.net();
        // Frozen at enqueue time: re-resolving from the routing table here
        // could name a host that is not even attached to this network.
        let next_hop = packet.next_hop;
        // Record what an eavesdropper on this network sees (flattened:
        // the wire carries a byte stream, not our segment bookkeeping).
        // Only pay for the flatten when a tap is actually installed.
        if net.network(network_id).wiretap.is_some() {
            if let PacketKind::Data(d) = &packet.kind {
                let payload = d.payload.contiguous();
                if let Some(tap) = net.network_mut(network_id).wiretap.as_mut() {
                    tap.push(payload);
                }
            }
        }
        let bytes = packet.wire_bytes();
        let reliable = packet.reliable;
        let crashed = !net.host(host).up;
        let partitioned = next_hop.is_some_and(|next| net.is_partitioned(host, next));
        let outcome = if crashed || partitioned {
            // The sender died mid-transmission, or a partition filter sits
            // between the two hosts: the packet never makes it across.
            WireOutcome::Lost
        } else {
            // Disjoint field borrows: the network (burst channel state)
            // mutates alongside the RNG.
            let NetState {
                ref mut rng,
                ref mut networks,
                ..
            } = *net;
            networks[network_id.0 as usize].sample_traversal(rng, bytes, reliable)
        };
        (outcome, next_hop)
    };
    match (outcome, next_hop) {
        (WireOutcome::Lost, _) | (_, None) => {
            sim.state.net().stats.wire_drops.incr();
        }
        (WireOutcome::Delivered { delay }, Some(next)) => {
            deliver_or_divert(sim, host, next, delay, packet);
        }
        (WireOutcome::Corrupted { delay }, Some(next)) => {
            packet.corrupted = true;
            deliver_or_divert(sim, host, next, delay, packet);
        }
    }
    // Free the transmitter and continue with the queue.
    sim.state.net().host_mut(host).ifaces[iface_idx].set_busy(false);
    start_tx(sim, host, iface_idx);
}

/// Hand a surviving packet to its next hop: scheduled locally in serial
/// execution, diverted into the shard outbox as a [`crate::shard::WireEnvelope`]
/// when `next` belongs to another logical process or when the world runs
/// in wire-divert mode (an external substrate carries its packets). Wire
/// effects (delay, corruption, ARQ) were already applied by the
/// transmitting side, so the envelope carries a finished traversal — the
/// receiving side just runs [`on_arrival`] at `deliver_at`.
fn deliver_or_divert<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    next: HostId,
    delay: SimDuration,
    packet: Packet,
) {
    if sim.state.net().wire_is_local(next) {
        sim.schedule_in(delay, move |sim| on_arrival(sim, next, packet));
        return;
    }
    let deliver_at = sim.now().saturating_add(delay);
    let shard = sim
        .state
        .net()
        .shard
        .as_mut()
        .expect("diverted next hop implies a shard context");
    let seq = shard.out_seq;
    shard.out_seq += 1;
    shard.outbox.push(crate::shard::WireEnvelope {
        deliver_at,
        src: host,
        seq,
        dst: next,
        packet,
    });
}

// ---------------------------------------------------------------------------
// Arrival / forwarding / per-kind handlers
// ---------------------------------------------------------------------------

/// A packet arrived at `host` (off the wire or via loopback).
pub fn on_arrival<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    if !sim.state.net_ref().host(host).up {
        // Packets addressed to (or through) a crashed host die on arrival.
        sim.state.net().stats.wire_drops.incr();
        return;
    }
    match &packet.kind {
        PacketKind::LinkStateAd { .. } => routing::handle_lsa(sim, host, packet),
        PacketKind::CreateReq { .. } => handle_create_req(sim, host, packet),
        PacketKind::CreateNak { .. } => handle_create_nak(sim, host, packet),
        PacketKind::Release { .. } => handle_release(sim, host, packet),
        _ if packet.dst != host => forward(sim, host, packet),
        PacketKind::Data(_) => handle_data(sim, host, packet),
        PacketKind::CreateAck { .. } => handle_create_ack(sim, host, packet),
        PacketKind::Invite { .. } => handle_invite(sim, host, packet),
        PacketKind::Raw { .. } => {
            sim.state.net().stats.packets_delivered.incr();
            let (proto, payload) = match packet.kind {
                PacketKind::Raw { proto, payload } => (proto, payload),
                _ => unreachable!(),
            };
            W::deliver_datagram(sim, host, packet.src, proto, payload, packet.sent_at);
        }
        PacketKind::Quench { .. } => {
            let (proto, dropped_dst) = match packet.kind {
                PacketKind::Quench { proto, dropped_dst } => (proto, dropped_dst),
                _ => unreachable!(),
            };
            W::deliver_quench(sim, host, proto, dropped_dst);
        }
    }
}

fn forward<W: NetWorld>(sim: &mut Sim<W>, host: HostId, mut packet: Packet) {
    packet.hops += 1;
    let ttl = sim.state.net_ref().config.ttl;
    if packet.hops > ttl {
        sim.state.net().stats.ttl_drops.incr();
        return;
    }
    // A source-routed packet arriving here finished the hop it was
    // traveling; advance the cursor to the next leg.
    if let Some(sr) = packet.source_route.as_mut() {
        sr.next += 1;
    }
    route_and_enqueue(sim, host, packet);
}

/// Build the reverse of `sr` as seen from the host at `sr.hops[at_index]`
/// (or, for the receiver endpoint, the final hop): the path back to
/// `creator` over exactly the networks the request traveled, so ACKs and
/// NAKs retrace the reservations they confirm or undo.
fn reverse_route(sr: &SourceRoute, at_index: usize, creator: HostId) -> SourceRoute {
    let mut hops = Vec::with_capacity(at_index + 1);
    let mut networks = Vec::with_capacity(at_index + 1);
    for j in (0..at_index).rev() {
        hops.push(sr.hops[j]);
        networks.push(sr.networks[j + 1]);
    }
    hops.push(creator);
    networks.push(sr.networks[0]);
    SourceRoute {
        hops,
        networks,
        next: 0,
    }
}

fn handle_create_req<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    // Take the packet apart by value: the kind's params and path move out
    // once instead of being cloned just to destructure.
    let Packet {
        src,
        dst,
        kind,
        deadline,
        sent_at,
        corrupted,
        hops,
        reliable,
        next_plan,
        source_route,
        next_hop: _,
    } = packet;
    let (token, rms, params, mut path, invite) = match kind {
        PacketKind::CreateReq {
            token,
            rms,
            params,
            path,
            invite,
        } => (token, rms, params, path, invite),
        _ => unreachable!(),
    };
    let (plan, key) = next_plan.unwrap_or((MechanismPlan::NONE, Key(0)));

    if dst == host {
        // Receiver endpoint. Idempotent: a retry of an already-accepted
        // request just re-acks.
        let is_new = !sim.state.net_ref().host(host).rms.contains_key(&rms);
        if is_new {
            let endpoint = NetRms::new(
                rms,
                RmsRole::Receiver,
                src,
                params.clone(),
                plan,
                key,
                path.clone(),
            );
            sim.state.net().host_mut(host).rms.insert(rms, endpoint);
        }
        let now = sim.now();
        // Retrace the request's own path so the confirmation cannot be
        // detoured by a concurrent route change.
        let back = source_route
            .as_ref()
            .map(|sr| reverse_route(sr, sr.next, src));
        let ack = Packet {
            src: host,
            dst: src,
            kind: PacketKind::CreateAck {
                token,
                rms,
                path: path.clone(),
                invite,
            },
            deadline: now,
            sent_at: now,
            corrupted: false,
            hops: 0,
            reliable: true,
            next_plan: None,
            source_route: back,
            next_hop: None,
        };
        route_and_enqueue(sim, host, ack);
        if is_new {
            // If this answers our invite, resolve it.
            if let Some(inv_token) = invite {
                if let Some(inv) = sim.state.net().host_mut(host).invites.remove(&inv_token) {
                    if let Some(t) = inv.timer {
                        t.cancel();
                    }
                }
            }
            W::rms_event(
                sim,
                host,
                NetRmsEvent::InboundCreated {
                    rms,
                    peer: src,
                    params,
                    invite,
                },
            );
        }
        return;
    }

    // Intermediate hop: reserve on the outbound interface named by the
    // creator's source route (falling back to the local table for legacy
    // un-routed requests) and forward.
    let now = sim.now();
    let verdict = {
        let net = sim.state.net();
        let next = match source_route.as_ref() {
            Some(sr) => {
                // The creator pinned the path; the next leg must exist,
                // be up, and be reachable from one of our interfaces.
                let next_idx = sr.next + 1;
                match (sr.networks.get(next_idx), sr.hops.get(next_idx)) {
                    (Some(&n), Some(&h)) if !net.network(n).down => net
                        .host(host)
                        .iface_on(n)
                        .map(|iface| Route { iface, next_hop: h }),
                    _ => None,
                }
            }
            None => {
                routing::ensure_host_routes(net, now, host);
                net.host(host).routes.get(&dst).copied()
            }
        };
        match next {
            None => Err(NakReason::NoRoute),
            Some(route) => {
                let force = net.config.debug_force_admission;
                let h = net.host_mut(host);
                if h.reservations.contains_key(&rms) {
                    Ok(route)
                } else {
                    let ledger = &mut h.ifaces[route.iface].ledger;
                    let admitted = if force {
                        ledger.force_admit(&params)
                    } else {
                        ledger.admit(&params)
                    };
                    let ok = admitted.is_admitted();
                    let (reserved_bps, budget_bps) =
                        (ledger.reserved_bps(), ledger.deterministic_budget_bps());
                    let verdict = if ok {
                        h.reservations.insert(rms, (route.iface, params.clone()));
                        Ok(route)
                    } else {
                        Err(NakReason::Admission)
                    };
                    if net.obs.is_active() {
                        net.obs.emit(
                            now,
                            ObsEvent::AdmissionDecision {
                                host: host.0,
                                admitted: ok,
                                reserved_bps,
                                budget_bps,
                            },
                        );
                    }
                    verdict
                }
            }
        }
    };
    match verdict {
        Ok(route) => {
            let net = sim.state.net();
            // Pin this stream's forwarding so data and teardown follow the
            // reservation even after reconvergence moves the table.
            net.host_mut(host).rms_next.insert(rms, route);
            let network = net.host(host).ifaces[route.iface].network;
            path.push(network);
            if hops < sim.state.net_ref().config.ttl {
                let fwd_route = source_route.map(|mut sr| {
                    sr.next += 1;
                    sr
                });
                let fwd = Packet {
                    src,
                    dst,
                    kind: PacketKind::CreateReq {
                        token,
                        rms,
                        params,
                        path,
                        invite,
                    },
                    deadline,
                    sent_at,
                    corrupted,
                    hops: hops + 1,
                    reliable,
                    next_plan: Some((plan, key)),
                    source_route: fwd_route,
                    next_hop: None,
                };
                route_and_enqueue(sim, host, fwd);
            } else {
                sim.state.net().stats.ttl_drops.incr();
            }
        }
        Err(reason) => {
            // Our own partial state must not outlive the refusal: a retry
            // may have reserved here on an earlier attempt.
            {
                let net = sim.state.net();
                if let Some((iface, params)) = net.host_mut(host).reservations.remove(&rms) {
                    net.host_mut(host).ifaces[iface].ledger.release(&params);
                }
                net.host_mut(host).rms_next.remove(&rms);
            }
            let back = source_route
                .as_ref()
                .map(|sr| reverse_route(sr, sr.next, src));
            let nak = Packet {
                src: host,
                dst: src,
                kind: PacketKind::CreateNak {
                    token,
                    rms,
                    reason,
                    invite,
                },
                deadline: now,
                sent_at: now,
                corrupted: false,
                hops: 0,
                reliable: true,
                next_plan: None,
                source_route: back,
                next_hop: None,
            };
            route_and_enqueue(sim, host, nak);
        }
    }
}

fn handle_create_nak<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    // All interesting fields are `Copy`; match by reference so the packet
    // stays whole for the forwarding case below.
    let (token, rms, reason) = match &packet.kind {
        PacketKind::CreateNak {
            token, rms, reason, ..
        } => (*token, *rms, *reason),
        _ => unreachable!(),
    };
    // Every hop holding a reservation for this stream releases it (and
    // drops its forwarding pin).
    {
        let net = sim.state.net();
        if let Some((iface, params)) = net.host_mut(host).reservations.remove(&rms) {
            net.host_mut(host).ifaces[iface].ledger.release(&params);
        }
        net.host_mut(host).rms_next.remove(&rms);
    }
    if packet.dst != host {
        forward(sim, host, packet);
        return;
    }
    // At the creator: walk to the next alternate if the refusal is the kind
    // another path might not repeat (admission pressure, a dead hop);
    // otherwise report failure.
    let retryable = matches!(reason, NakReason::Admission | NakReason::NoRoute);
    if retryable {
        let advanced = {
            let net = sim.state.net();
            match net.host_mut(host).pending.get_mut(&token) {
                Some(p) if p.alt_idx + 1 < p.alternates.len() => {
                    p.alt_idx += 1;
                    p.attempts = 0;
                    let c = &p.alternates[p.alt_idx];
                    p.params = c.params.clone();
                    p.plan = c.plan;
                    if let Some(t) = p.timer.take() {
                        t.cancel();
                    }
                    true
                }
                _ => false,
            }
        };
        if advanced {
            start_create_attempt(sim, host, token);
            return;
        }
    }
    if let Some(p) = sim.state.net().host_mut(host).pending.remove(&token) {
        if let Some(t) = p.timer {
            t.cancel();
        }
        W::rms_event(
            sim,
            host,
            NetRmsEvent::CreateFailed {
                token,
                reason: nak_to_reject(reason),
            },
        );
    }
}

fn handle_release<W: NetWorld>(sim: &mut Sim<W>, host: HostId, mut packet: Packet) {
    let rms = match packet.kind {
        PacketKind::Release { rms } => rms,
        _ => unreachable!(),
    };
    // Capture the forwarding pin before tearing down: the release must
    // chase the reservations along the path they were made on.
    let pin = {
        let net = sim.state.net();
        let pin = net.host_mut(host).rms_next.remove(&rms);
        if let Some((iface, params)) = net.host_mut(host).reservations.remove(&rms) {
            net.host_mut(host).ifaces[iface].ledger.release(&params);
        }
        pin
    };
    if packet.dst != host {
        packet.hops += 1;
        let ttl = sim.state.net_ref().config.ttl;
        if packet.hops > ttl {
            sim.state.net().stats.ttl_drops.incr();
            return;
        }
        match pin {
            Some(route) => {
                packet.next_hop = Some(route.next_hop);
                enqueue_on(sim, host, route.iface, packet);
            }
            None => {
                route_and_enqueue(sim, host, packet);
            }
        }
        return;
    }
    if sim.state.net().host_mut(host).rms.remove(&rms).is_some() {
        W::rms_event(sim, host, NetRmsEvent::Closed { rms });
    }
}

fn handle_create_ack<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    // The ack is consumed here; move the path out instead of cloning it.
    let (token, rms, path) = match packet.kind {
        PacketKind::CreateAck {
            token, rms, path, ..
        } => (token, rms, path),
        _ => unreachable!(),
    };
    let pending = match sim.state.net().host_mut(host).pending.remove(&token) {
        Some(p) => p,
        None => return, // duplicate ack
    };
    if let Some(t) = pending.timer {
        t.cancel();
    }
    // Record when a fallback path (not the shortest candidate) carried the
    // establishment to completion.
    if pending
        .alternates
        .get(pending.alt_idx)
        .is_some_and(|c| !c.is_primary)
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::RoutingAlternateWin {
                    host: host.0,
                    alternate: pending.alt_idx as u32,
                },
            );
        }
    }
    // The plan and key were chosen at request time and carried to the
    // receiver; adopt the same ones here.
    let endpoint = NetRms::new(
        rms,
        RmsRole::Sender,
        pending.peer,
        pending.params.clone(),
        pending.plan,
        pending.key,
        path,
    );
    sim.state.net().host_mut(host).rms.insert(rms, endpoint);
    let event = if pending.invite.is_some() {
        NetRmsEvent::SenderCreatedByInvite {
            rms,
            peer: pending.peer,
            params: pending.params,
        }
    } else {
        NetRmsEvent::Created {
            token,
            rms,
            params: pending.params,
        }
    };
    W::rms_event(sim, host, event);
}

fn handle_invite<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    let inviter = packet.src;
    let (token, params) = match packet.kind {
        PacketKind::Invite { token, params } => (token, params),
        _ => unreachable!(),
    };
    // Already answering this invite? Then this is a retransmitted invite.
    let already = sim
        .state
        .net_ref()
        .host(host)
        .pending
        .values()
        .any(|p| p.invite == Some(token));
    if already {
        return;
    }
    // Resolve candidates for the data direction (us -> inviter); a
    // fresh negotiation per path keeps each alternate's parameters honest.
    let request = RmsRequest::exact((*params).clone());
    let Ok(alternates) = routing::candidate_paths(sim.state.net_ref(), host, inviter, &request)
    else {
        // No viable path back: let the inviter's own retry/timeout decide.
        return;
    };
    let net = sim.state.net();
    let local_token = net.alloc_token();
    let rms = net.alloc_rms_id();
    let key = Key(net.rng.next_u64());
    let route_gen = net.route_generation;
    let first = &alternates[0];
    let (params, plan) = (first.params.clone(), first.plan);
    net.host_mut(host).pending.insert(
        local_token,
        PendingCreate {
            rms,
            peer: inviter,
            params,
            attempts: 0,
            timer: None,
            invite: Some(token),
            plan,
            key,
            request,
            alternates,
            alt_idx: 0,
            route_gen,
        },
    );
    start_create_attempt(sim, host, local_token);
    // (Invite-answering creates have no caller waiting on the token, so a
    // synchronous first attempt is fine here.)
}

fn handle_data<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    let data = match packet.kind {
        PacketKind::Data(d) => d,
        _ => unreachable!(),
    };
    let corrupted = packet.corrupted;
    let sent_at = packet.sent_at;
    let rms = data.rms;
    let (plan, params) = {
        let net = sim.state.net();
        match net.host(host).rms.get(&rms) {
            Some(s) if s.role == RmsRole::Receiver && !s.failed => (s.plan, s.params.clone()),
            _ => return, // unknown/failed/wrong-role: silently dropped
        }
    };
    let len = data.payload.len() as u64;
    {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::NetRecv {
                    host: host.0,
                    rms: rms.0,
                    seq: data.seq,
                    span: data.span,
                },
            );
        }
    }
    let cost = sim
        .state
        .net_ref()
        .config
        .per_packet_cpu
        .plus(plan.cost())
        .cost_for(len);
    let cpu_deadline = {
        let now = sim.now();
        let d = now.saturating_add(params.delay.bound_for(len));
        let state = sim
            .state
            .net()
            .host_mut(host)
            .rms
            .get_mut(&rms)
            .expect("checked above");
        let d = d.max(state.last_recv_job_deadline);
        state.last_recv_job_deadline = d;
        d
    };
    W::charge_cpu(
        sim,
        host,
        cost,
        cpu_deadline,
        rms.0,
        Box::new(move |sim| {
            deliver_data(sim, host, rms, data, corrupted, sent_at);
        }),
    );
}

fn deliver_data<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    rms_id: NetRmsId,
    data: DataPacket,
    corrupted: bool,
    sent_at: SimTime,
) {
    let now = sim.now();
    // Stage 1: verification + ordering, against the endpoint state.
    let mut deliveries: Vec<(u64, Message, SimTime)> = Vec::new();
    let mut failed_stream = false;
    {
        let net = sim.state.net();
        let Some(state) = net.host_mut(host).rms.get_mut(&rms_id) else {
            return;
        };
        if state.failed {
            return;
        }
        let plan = state.plan;
        let key = state.key;

        // Integrity: a corrupted packet is caught by checksum or MAC when
        // present; otherwise it is delivered corrupted (§2.2's error-rate
        // contract covers this case).
        let mut payload = data.payload.clone();
        if corrupted {
            if plan.checksum.is_some() || plan.mac {
                state.stats.corrupt_dropped.incr();
                state.stats.lost.incr();
                return;
            }
            // Visible, deterministic corruption of the delivered bytes.
            let mut v = payload.contiguous().to_vec();
            if let Some(b) = v.first_mut() {
                *b ^= 0xff;
            }
            payload = WireMsg::from(v);
            state.stats.corrupt_delivered.incr();
        } else {
            // Authentication: verify tag and source label (§2.1). The
            // byte-stream transforms flatten once; unsecured streams (the
            // common case) never take these branches.
            if plan.mac {
                let context = data.seq ^ data.source.map(|l| l.0).unwrap_or(0).rotate_left(17);
                let ok = data
                    .mac
                    .map(|m| mac::verify(key, context, &payload.contiguous(), mac::Tag(m)))
                    .unwrap_or(false);
                if !ok {
                    state.stats.corrupt_dropped.incr();
                    return;
                }
            }
            if let (Some(alg), Some(sum)) = (plan.checksum, data.checksum) {
                if !alg.verify(&payload.contiguous(), sum) {
                    state.stats.corrupt_dropped.incr();
                    state.stats.lost.incr();
                    return;
                }
            }
        }
        if plan.encrypt {
            payload = WireMsg::from_bytes(decrypt(key, data.seq, &payload.contiguous()));
        }

        // Ordering (§2 property 2: delivered in sequence).
        let reliable = state.params.reliability == Reliability::Reliable;
        if state.is_stale(data.seq) {
            state.stats.stale_dropped.incr();
            return;
        }
        let expected = state.last_delivered.map_or(0, |l| l + 1);
        let mk_msg = |payload: WireMsg| {
            let mut m = Message::from_wire(payload);
            m.source = data.source;
            m.target = data.target;
            m.span = data.span;
            m
        };
        if reliable {
            if data.seq == expected {
                deliveries.push((data.seq, mk_msg(payload), sent_at));
                state.last_delivered = Some(data.seq);
                // Drain the reorder buffer.
                while let Some(next) = state.last_delivered.map(|l| l + 1) {
                    match state.reorder.remove(&next) {
                        Some(b) => {
                            let mut m = Message::from_wire(b.payload);
                            m.source = b.source;
                            m.target = b.target;
                            m.span = b.span;
                            deliveries.push((next, m, b.sent_at));
                            state.last_delivered = Some(next);
                        }
                        None => break,
                    }
                }
            } else {
                state.reorder.insert(
                    data.seq,
                    Buffered {
                        payload,
                        source: data.source,
                        target: data.target,
                        sent_at,
                        span: data.span,
                    },
                );
                if state.reorder.len() > REORDER_FAIL_THRESHOLD {
                    state.failed = true;
                    failed_stream = true;
                }
            }
        } else {
            // Unreliable: deliver newest-in-order; count the gap as loss.
            let gap = data.seq.saturating_sub(expected);
            state.stats.lost.add(gap);
            state.last_delivered = Some(data.seq);
            deliveries.push((data.seq, mk_msg(payload), sent_at));
        }

        // Per-delivery stats.
        for (_, msg, s_at) in &deliveries {
            state.stats.delivered.incr();
            state.stats.bytes.add(msg.len() as u64);
            let delay = now.saturating_since(*s_at);
            state.stats.delays.record(delay.as_secs_f64());
            if delay > state.params.delay.bound_for(msg.len() as u64) {
                state.stats.late.incr();
            }
        }
    }
    if failed_stream {
        W::rms_event(
            sim,
            host,
            NetRmsEvent::Failed {
                rms: rms_id,
                reason: FailReason::GuaranteeViolated,
            },
        );
        return;
    }
    // Stage 2: hand off to the world.
    for (seq, msg, s_at) in deliveries {
        let net = sim.state.net();
        net.stats.packets_delivered.incr();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::NetPacketDelivered {
                    host: host.0,
                    rms: rms_id.0,
                    seq,
                    span: msg.span,
                },
            );
        }
        let info = DeliveryInfo {
            sent_at: s_at,
            delivered_at: now,
            stream: rms_id.0,
            seq,
        };
        W::deliver_up(sim, host, rms_id, msg, info);
    }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

/// Bring a network down: in-flight and future packets on it are lost, and
/// every RMS whose path traverses it fails with
/// [`FailReason::NetworkDown`] (§2 property 3: "clients are notified of an
/// RMS failure").
///
/// Reconvergence is event-driven and scoped: tables are only marked dirty
/// (lazily recomputed at first use) and the hosts that witnessed the
/// failure — those attached to the dead network — re-flood their link
/// state so the rest of the internetwork learns the new headroom picture.
pub fn fail_network<W: NetWorld>(sim: &mut Sim<W>, network: NetworkId) {
    let now = sim.now();
    let mut failures: Vec<(HostId, NetRmsId)> = Vec::new();
    {
        let net = sim.state.net();
        if net.network(network).down {
            return;
        }
        net.network_mut(network).down = true;
        for host in &mut net.hosts {
            for (id, state) in host.rms.iter_mut() {
                if !state.failed && state.path.contains(&network) {
                    state.failed = true;
                    failures.push((host.id, *id));
                }
            }
        }
        // `NetHost::rms` is a HashMap: sort so notification order (and thus
        // everything downstream of it) is identical across runs of a seed.
        failures.sort_by_key(|(h, r)| (h.0, r.0));
        routing::mark_routes_dirty(net, now);
        if net.obs.is_active() {
            net.obs
                .emit(now, ObsEvent::NetworkFailed { network: network.0 });
        }
    }
    // Scoped re-flood from the failure's witnesses (`attached` is in build
    // order, ascending, so flood order is deterministic).
    let witnesses: Vec<HostId> = {
        let net = sim.state.net_ref();
        net.network(network)
            .attached
            .iter()
            .copied()
            .filter(|h| net.host(*h).up)
            .collect()
    };
    for h in witnesses {
        routing::flood_from(sim, h);
    }
    for (host, rms) in failures {
        W::rms_event(
            sim,
            host,
            NetRmsEvent::Failed {
                rms,
                reason: FailReason::NetworkDown,
            },
        );
    }
    W::network_event(sim, network, false);
}

/// Restore a failed network. Existing RMSs stay failed (clients must create
/// new ones, §4.4); new creations will succeed again. Upper layers hear
/// about the recovery through [`NetWorld::network_event`]. Like
/// [`fail_network`], reconvergence is scoped: dirty tables plus a re-flood
/// from the restored network's attached hosts.
pub fn restore_network<W: NetWorld>(sim: &mut Sim<W>, network: NetworkId) {
    let now = sim.now();
    {
        let net = sim.state.net();
        if !net.network(network).down {
            return;
        }
        net.network_mut(network).down = false;
        routing::mark_routes_dirty(net, now);
        if net.obs.is_active() {
            net.obs
                .emit(now, ObsEvent::NetworkRestored { network: network.0 });
        }
    }
    let witnesses: Vec<HostId> = {
        let net = sim.state.net_ref();
        net.network(network)
            .attached
            .iter()
            .copied()
            .filter(|h| net.host(*h).up)
            .collect()
    };
    for h in witnesses {
        routing::flood_from(sim, h);
    }
    W::network_event(sim, network, true);
}
