//! Network interfaces with deadline-ordered transmission queues.
//!
//! Paper §4.1: "For network RMS, the deadlines are used to determine the
//! order in which packets are queued for transmission on a network
//! interface." §2.5: "if packet queueing in an internetwork gateway is done
//! using RMS-specified deadlines, then a low-delay packet can be sent
//! before high-delay packets that would otherwise cause it to be delivered
//! late."
//!
//! Ties are broken by enqueue order, which also yields plain FIFO when all
//! deadlines are equal (the baseline mode used by the scheduling
//! experiment).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dash_sim::stats::{Counter, Histogram};
use dash_sim::time::SimTime;
use rms_core::admission::ResourceLedger;

use crate::ids::NetworkId;
use crate::packet::Packet;

/// How an interface orders its transmit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Earliest transmission deadline first (the RMS design).
    #[default]
    Deadline,
    /// Arrival order, ignoring deadlines (the baseline).
    Fifo,
}

#[derive(Debug)]
struct Queued {
    key: SimTime,
    seq: u64,
    enqueued_at: SimTime,
    packet: Packet,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (key, seq).
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// Interface statistics for the experiments.
#[derive(Debug, Default)]
pub struct IfaceStats {
    /// Packets fully transmitted.
    pub tx_packets: Counter,
    /// Wire bytes transmitted.
    pub tx_bytes: Counter,
    /// Packets dropped because the queue byte limit was hit.
    pub overflow_drops: Counter,
    /// Queueing delay (enqueue → transmission start), seconds.
    pub queue_delay: Histogram,
    /// High-water mark of queued bytes.
    pub max_queued_bytes: u64,
}

/// One attachment of a host to a network: the transmit side.
#[derive(Debug)]
pub struct Iface {
    /// The network this interface is attached to.
    pub network: NetworkId,
    discipline: QueueDiscipline,
    queue: BinaryHeap<Queued>,
    queued_bytes: u64,
    queue_limit_bytes: Option<u64>,
    next_seq: u64,
    busy: bool,
    /// Transmitter frozen until this instant (fault injection): queued
    /// packets wait, nothing is dropped by the stall itself.
    pub stalled_until: SimTime,
    /// Admission-control ledger for streams reserved through this
    /// interface.
    pub ledger: ResourceLedger,
    /// Measurement counters.
    pub stats: IfaceStats,
}

impl Iface {
    /// A new interface on `network` with the given ledger and optional
    /// queue byte limit.
    pub fn new(
        network: NetworkId,
        discipline: QueueDiscipline,
        ledger: ResourceLedger,
        queue_limit_bytes: Option<u64>,
    ) -> Self {
        Iface {
            network,
            discipline,
            queue: BinaryHeap::new(),
            queued_bytes: 0,
            queue_limit_bytes,
            next_seq: 0,
            busy: false,
            stalled_until: SimTime::ZERO,
            ledger,
            stats: IfaceStats::default(),
        }
    }

    /// True while the transmitter is frozen by an injected stall.
    pub fn is_stalled(&self, now: SimTime) -> bool {
        now < self.stalled_until
    }

    /// The queue ordering in force.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Change the queue ordering (affects later enqueues).
    pub fn set_discipline(&mut self, d: QueueDiscipline) {
        self.discipline = d;
    }

    /// Bytes currently waiting (not counting the packet on the wire).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently waiting.
    pub fn queued_packets(&self) -> usize {
        self.queue.len()
    }

    /// True while a packet is being serialized onto the wire.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Mark the transmitter busy/idle (driven by the pipeline).
    pub fn set_busy(&mut self, busy: bool) {
        self.busy = busy;
    }

    /// Enqueue a packet for transmission at `now`.
    ///
    /// Returns `false` (and counts an overflow drop) if the byte limit
    /// would be exceeded. Control packets are always accepted: they are
    /// tiny, and dropping reservations/teardowns wedges the protocol state
    /// machines the same way real networks prioritize control traffic.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> bool {
        let bytes = packet.wire_bytes();
        if !packet.is_control() {
            if let Some(limit) = self.queue_limit_bytes {
                if self.queued_bytes + bytes > limit {
                    self.stats.overflow_drops.incr();
                    return false;
                }
            }
        }
        let key = match self.discipline {
            QueueDiscipline::Deadline => packet.deadline,
            QueueDiscipline::Fifo => now,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queued_bytes += bytes;
        self.stats.max_queued_bytes = self.stats.max_queued_bytes.max(self.queued_bytes);
        self.queue.push(Queued {
            key,
            seq,
            enqueued_at: now,
            packet,
        });
        true
    }

    /// Pop the next packet to transmit, recording its queueing delay.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let q = self.queue.pop()?;
        self.queued_bytes -= q.packet.wire_bytes();
        self.stats
            .queue_delay
            .record(now.saturating_since(q.enqueued_at).as_secs_f64());
        Some(q.packet)
    }

    /// Drop everything queued (host crash), returning how many packets
    /// were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        self.queued_bytes = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, NetRmsId};
    use crate::packet::{DataPacket, PacketKind};
    use rms_core::wire::WireMsg;

    fn ledger() -> ResourceLedger {
        ResourceLedger::new(10e6 / 8.0, 1 << 20)
    }

    fn packet(deadline_ns: u64, len: usize) -> Packet {
        Packet {
            src: HostId(0),
            dst: HostId(1),
            kind: PacketKind::Data(DataPacket {
                rms: NetRmsId(0),
                seq: 0,
                payload: WireMsg::from(vec![0u8; len]),
                source: None,
                target: None,
                mac: None,
                checksum: None,
                span: None,
            }),
            deadline: SimTime::from_nanos(deadline_ns),
            sent_at: SimTime::ZERO,
            corrupted: false,
            hops: 0,
            reliable: false,
            next_plan: None,
            source_route: None,
            next_hop: None,
        }
    }

    fn release_packet() -> Packet {
        Packet {
            src: HostId(0),
            dst: HostId(1),
            kind: PacketKind::Release { rms: NetRmsId(0) },
            deadline: SimTime::ZERO,
            sent_at: SimTime::ZERO,
            corrupted: false,
            hops: 0,
            reliable: true,
            next_plan: None,
            source_route: None,
            next_hop: None,
        }
    }

    #[test]
    fn deadline_order_lets_urgent_overtake() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger(), None);
        iface.enqueue(SimTime::ZERO, packet(1_000_000, 10)); // lazy
        iface.enqueue(SimTime::ZERO, packet(1_000, 10)); // urgent, enqueued later
        let first = iface.dequeue(SimTime::ZERO).unwrap();
        assert_eq!(first.deadline, SimTime::from_nanos(1_000));
    }

    #[test]
    fn fifo_ignores_deadlines() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Fifo, ledger(), None);
        iface.enqueue(SimTime::ZERO, packet(1_000_000, 10));
        iface.enqueue(SimTime::ZERO, packet(1_000, 10));
        let first = iface.dequeue(SimTime::ZERO).unwrap();
        assert_eq!(first.deadline, SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn equal_deadlines_preserve_arrival_order() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger(), None);
        for len in [1usize, 2, 3] {
            iface.enqueue(SimTime::ZERO, packet(500, len));
        }
        for expect in [1usize, 2, 3] {
            let p = iface.dequeue(SimTime::ZERO).unwrap();
            if let PacketKind::Data(d) = p.kind {
                assert_eq!(d.payload.len(), expect);
            } else {
                panic!("not data");
            }
        }
    }

    #[test]
    fn byte_limit_drops_data_but_not_control() {
        let limit = packet(0, 100).wire_bytes() + 10;
        let mut iface = Iface::new(
            NetworkId(0),
            QueueDiscipline::Deadline,
            ledger(),
            Some(limit),
        );
        assert!(iface.enqueue(SimTime::ZERO, packet(0, 100)));
        assert!(!iface.enqueue(SimTime::ZERO, packet(0, 100)));
        assert_eq!(iface.stats.overflow_drops.get(), 1);
        // Control packets bypass the limit.
        assert!(iface.enqueue(SimTime::ZERO, release_packet()));
    }

    #[test]
    fn byte_accounting_through_dequeue() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger(), None);
        iface.enqueue(SimTime::ZERO, packet(0, 100));
        let before = iface.queued_bytes();
        assert!(before > 100);
        iface.dequeue(SimTime::from_nanos(10)).unwrap();
        assert_eq!(iface.queued_bytes(), 0);
        assert_eq!(iface.queued_packets(), 0);
        assert_eq!(iface.stats.max_queued_bytes, before);
    }

    #[test]
    fn queue_delay_recorded() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger(), None);
        iface.enqueue(SimTime::ZERO, packet(0, 10));
        iface.dequeue(SimTime::from_nanos(5_000)).unwrap();
        assert_eq!(iface.stats.queue_delay.count(), 1);
        assert!((iface.stats.queue_delay.mean() - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut iface = Iface::new(NetworkId(0), QueueDiscipline::Deadline, ledger(), None);
        assert!(iface.dequeue(SimTime::ZERO).is_none());
    }
}
