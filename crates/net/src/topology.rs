//! Topology construction: hosts, networks, attachments, and shortest-path
//! routing.
//!
//! An internetwork is a bipartite graph of hosts and networks; a host
//! attached to two networks is a gateway that store-and-forwards with
//! deadline queueing (§2.5). At build time every host's link-state
//! database is seeded and its first-hop table computed by the routing
//! subsystem's deterministic BFS (fewest hops; ties broken toward
//! lower-numbered neighbours); thereafter [`crate::routing`] keeps tables
//! converged event-drivenly.

use rms_core::admission::ResourceLedger;

use crate::ids::{HostId, NetworkId};
use crate::iface::Iface;
use crate::network::{Network, NetworkSpec};
use crate::state::{NetConfig, NetHost, NetState};

/// Builder for a [`NetState`] (C-BUILDER).
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    specs: Vec<NetworkSpec>,
    attachments: Vec<Vec<NetworkId>>, // per host
    config: NetConfig,
    seed: u64,
    iface_queue_limit: Option<u64>,
}

impl TopologyBuilder {
    /// Start an empty topology with default configuration and seed 1.
    pub fn new() -> Self {
        TopologyBuilder {
            specs: Vec::new(),
            attachments: Vec::new(),
            config: NetConfig::default(),
            seed: 1,
            iface_queue_limit: None,
        }
    }

    /// Replace the network-layer configuration.
    pub fn config(&mut self, config: NetConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Set the RNG seed for wire randomness.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Give every interface a transmit-queue byte limit (models gateway
    /// buffer space; `None` = unbounded).
    pub fn iface_queue_limit(&mut self, bytes: Option<u64>) -> &mut Self {
        self.iface_queue_limit = bytes;
        self
    }

    /// Add a network.
    pub fn network(&mut self, spec: NetworkSpec) -> NetworkId {
        let id = NetworkId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Add a host with no attachments yet.
    pub fn host(&mut self) -> HostId {
        let id = HostId(self.attachments.len() as u32);
        self.attachments.push(Vec::new());
        id
    }

    /// Attach `host` to `network`.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown or the attachment already exists.
    pub fn attach(&mut self, host: HostId, network: NetworkId) -> &mut Self {
        assert!((network.0 as usize) < self.specs.len(), "unknown network");
        let at = &mut self.attachments[host.0 as usize];
        assert!(!at.contains(&network), "duplicate attachment");
        at.push(network);
        self
    }

    /// Convenience: a host attached to one network.
    pub fn host_on(&mut self, network: NetworkId) -> HostId {
        let h = self.host();
        self.attach(h, network);
        h
    }

    /// Convenience: a gateway attached to two networks.
    pub fn gateway(&mut self, a: NetworkId, b: NetworkId) -> HostId {
        let h = self.host();
        self.attach(h, a);
        self.attach(h, b);
        h
    }

    /// Materialize the [`NetState`]: create interfaces with admission
    /// ledgers and compute all-pairs routes.
    pub fn build(self) -> NetState {
        let mut state = NetState::new(self.config.clone(), self.seed);
        for (i, spec) in self.specs.iter().enumerate() {
            state
                .networks
                .push(Network::new(NetworkId(i as u32), spec.clone()));
        }
        for (h, nets) in self.attachments.iter().enumerate() {
            let id = HostId(h as u32);
            let mut ifaces = Vec::new();
            for n in nets {
                let spec = &self.specs[n.0 as usize];
                let ledger = ResourceLedger::new(spec.rate_bps / 8.0, spec.iface_buffer_bytes);
                ifaces.push(Iface::new(
                    *n,
                    self.config.discipline,
                    ledger,
                    self.iface_queue_limit,
                ));
                state.networks[n.0 as usize].attached.push(id);
            }
            state.hosts.push(NetHost {
                id,
                ifaces,
                routes: Default::default(),
                lsdb: Default::default(),
                lsa_seq: 0,
                routes_dirty_since: None,
                rms_next: Default::default(),
                rms: Default::default(),
                reservations: Default::default(),
                pending: Default::default(),
                invites: Default::default(),
                cpu_free_at: dash_sim::time::SimTime::ZERO,
                up: true,
            });
        }
        compute_routes(&mut state);
        state
    }
}

/// (Re)compute all-pairs shortest-hop routes: seed every LSDB with a fresh
/// ad from every host, then rebuild each host's first-hop table eagerly.
///
/// Fault-aware: down networks carry no edges, and crashed hosts are never
/// used as transit (they can still be a destination — packets addressed to
/// them die on arrival instead). This is the build-time (and full-rebuild)
/// path; live fault events use the scoped, event-driven reconvergence of
/// [`crate::routing`] instead.
pub fn compute_routes(state: &mut NetState) {
    crate::routing::seed_lsdbs(state);
    state.route_generation += 1;
    for h in 0..state.hosts.len() {
        let id = HostId(h as u32);
        let routes = crate::routing::primary_routes(state, id);
        let host = &mut state.hosts[h];
        host.routes = routes;
        host.routes_dirty_since = None;
    }
}

/// A ready-made topology: two hosts on one Ethernet. Returns
/// `(state, host_a, host_b)`.
pub fn two_hosts_ethernet() -> (NetState, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let net = b.network(NetworkSpec::ethernet("lan"));
    let a = b.host_on(net);
    let c = b.host_on(net);
    (b.build(), a, c)
}

/// A ready-made internetwork: two Ethernets joined by a long-haul link via
/// two gateways. Returns `(state, host_a, host_b, gateway_a, gateway_b)`.
pub fn dumbbell() -> (NetState, HostId, HostId, HostId, HostId) {
    let mut b = TopologyBuilder::new();
    let lan_a = b.network(NetworkSpec::ethernet("lan-a"));
    let wan = b.network(NetworkSpec::long_haul("wan"));
    let lan_b = b.network(NetworkSpec::ethernet("lan-b"));
    let a = b.host_on(lan_a);
    let gb1 = b.gateway(lan_a, wan);
    let gb2 = b.gateway(wan, lan_b);
    let c = b.host_on(lan_b);
    (b.build(), a, c, gb1, gb2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hosts_route_directly() {
        let (state, a, c) = two_hosts_ethernet();
        let r = state.host(a).routes.get(&c).unwrap();
        assert_eq!(r.next_hop, c);
        assert_eq!(r.iface, 0);
        assert!(!state.host(a).routes.contains_key(&a));
    }

    #[test]
    fn dumbbell_routes_through_gateways() {
        let (state, a, c, g1, g2) = dumbbell();
        let path = state.path(a, c).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].0, a);
        assert_eq!(path[0].3, g1);
        assert_eq!(path[1].0, g1);
        assert_eq!(path[1].3, g2);
        assert_eq!(path[2].0, g2);
        assert_eq!(path[2].3, c);
        // Reverse path is symmetric.
        let back = state.path(c, a).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].3, g2);
    }

    #[test]
    fn unreachable_hosts_have_no_route() {
        let mut b = TopologyBuilder::new();
        let n1 = b.network(NetworkSpec::ethernet("x"));
        let n2 = b.network(NetworkSpec::ethernet("y"));
        let a = b.host_on(n1);
        let c = b.host_on(n2);
        let state = b.build();
        assert!(!state.host(a).routes.contains_key(&c));
        assert!(state.path(a, c).is_none());
    }

    #[test]
    fn gateway_prefers_shortest_path() {
        // a - lan1 - g - lan2 - c, plus a direct lan3 between a and c.
        let mut b = TopologyBuilder::new();
        let lan1 = b.network(NetworkSpec::ethernet("1"));
        let lan2 = b.network(NetworkSpec::ethernet("2"));
        let lan3 = b.network(NetworkSpec::ethernet("3"));
        let a = b.host();
        b.attach(a, lan1);
        b.attach(a, lan3);
        let _g = b.gateway(lan1, lan2);
        let c = b.host();
        b.attach(c, lan2);
        b.attach(c, lan3);
        let state = b.build();
        let path = state.path(a, c).unwrap();
        assert_eq!(path.len(), 1, "direct lan3 path wins");
        assert_eq!(path[0].2, lan3);
    }

    #[test]
    #[should_panic(expected = "duplicate attachment")]
    fn duplicate_attachment_panics() {
        let mut b = TopologyBuilder::new();
        let n = b.network(NetworkSpec::ethernet("x"));
        let h = b.host_on(n);
        b.attach(h, n);
    }

    #[test]
    fn attachments_register_on_networks() {
        let (state, a, c) = two_hosts_ethernet();
        assert_eq!(state.network(NetworkId(0)).attached, vec![a, c]);
    }
}
