//! Packets: what travels on the simulated wire.

use dash_security::cipher::Key;
use dash_security::suite::MechanismPlan;
use dash_sim::time::SimTime;
use rms_core::message::Label;
use rms_core::params::SharedParams;
use rms_core::wire::WireMsg;

use crate::ids::{CreateToken, HostId, NetRmsId, NetworkId};
use crate::routing::lsdb::LinkStateAd;

/// An explicit hop-by-hop route pinned into a packet by the creator (or by
/// a replying hop, for the reverse direction). RMS establishment uses this
/// to steer `CreateReq`/`CreateAck`/`CreateNak` along a *chosen* alternate
/// path rather than whatever each hop's table happens to say, so admission
/// walks exactly the path the route computation admitted.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRoute {
    /// Remaining-and-past hops, ending with the final destination. The
    /// originating host is *not* listed. `hops[i]` is reached by crossing
    /// `networks[i]`.
    pub hops: Vec<HostId>,
    /// `networks[i]` connects `hops[i-1]` (or the originator, for `i == 0`)
    /// to `hops[i]`. Same length as `hops`.
    pub networks: Vec<NetworkId>,
    /// Index of the hop the packet is currently traveling toward.
    pub next: usize,
}

impl SourceRoute {
    /// The network the packet must cross next, if any hops remain.
    pub fn next_network(&self) -> Option<NetworkId> {
        self.networks.get(self.next).copied()
    }

    /// The host the packet must be handed to next, if any hops remain.
    pub fn next_hop(&self) -> Option<HostId> {
        self.hops.get(self.next).copied()
    }
}

/// Base header size (addresses, kind, seq, deadline field) charged to every
/// packet, in bytes. Security mechanisms add their own overhead on top.
pub const BASE_HEADER_BYTES: u64 = 28;

/// Why an RMS creation attempt was refused, in wire-compact form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakReason {
    /// A hop's admission control refused the reservation.
    Admission,
    /// The destination host refused (unknown/limits).
    PeerRefused,
    /// No route toward the destination at some hop.
    NoRoute,
}

/// The payload-bearing part of a data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// The network RMS this packet belongs to.
    pub rms: NetRmsId,
    /// Sender-assigned sequence number on that RMS.
    pub seq: u64,
    /// Payload segments (possibly ciphertext). Scatter-gather: the views
    /// are shared with the sender's buffers, never copied per hop.
    pub payload: WireMsg,
    /// Optional source label (§2: authenticated streams verify it).
    pub source: Option<Label>,
    /// Optional target label.
    pub target: Option<Label>,
    /// Authentication tag, when the RMS's mechanism plan includes a MAC.
    pub mac: Option<u64>,
    /// Software checksum value, when the plan includes one.
    pub checksum: Option<u32>,
    /// Observability span id riding with the payload (`dash_sim::obs`).
    /// Carried only while a sink is active; treated as metadata, not
    /// wire bytes, so enabling observability never perturbs timing.
    pub span: Option<u64>,
}

/// Packet kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketKind {
    /// RMS data.
    Data(DataPacket),
    /// Hop-by-hop RMS creation request, reserving resources as it travels
    /// from the data sender toward the data receiver.
    CreateReq {
        /// Creator's correlation token.
        token: CreateToken,
        /// The RMS id allocated by the sender side.
        rms: NetRmsId,
        /// The negotiated parameters being reserved.
        params: SharedParams,
        /// Networks traversed so far (for failure notification).
        path: Vec<crate::ids::NetworkId>,
        /// Set when this request answers a receiver-side create (invite).
        invite: Option<CreateToken>,
    },
    /// Positive reply, routed from receiver back to sender.
    CreateAck {
        /// Echo of the request token.
        token: CreateToken,
        /// The created RMS.
        rms: NetRmsId,
        /// Networks on the forward path (receiver echoes them back).
        path: Vec<crate::ids::NetworkId>,
        /// Echo of the invite token, if any.
        invite: Option<CreateToken>,
    },
    /// Negative reply; hops that reserved for `rms` release on sight.
    CreateNak {
        /// Echo of the request token.
        token: CreateToken,
        /// The RMS whose reservations must be released.
        rms: NetRmsId,
        /// Why.
        reason: NakReason,
        /// Echo of the invite token, if any.
        invite: Option<CreateToken>,
    },
    /// A receiver-side creator asks the peer to initiate a sender-side
    /// create toward it (§2.4: "the creator of an RMS may act as either the
    /// sender or the receiver").
    Invite {
        /// Creator's correlation token (echoed through the whole exchange).
        token: CreateToken,
        /// Parameters the receiver-creator wants.
        params: SharedParams,
    },
    /// Teardown, routed sender → receiver; hops release reservations.
    Release {
        /// The RMS being closed.
        rms: NetRmsId,
    },
    /// A raw datagram outside any RMS (baseline traffic, §1's "unreliable,
    /// insecure datagrams").
    Raw {
        /// Demultiplexing tag for the upper layer.
        proto: u16,
        /// Payload segments (scatter-gather, shared with the sender).
        payload: WireMsg,
    },
    /// A link-state advertisement flooded by the routing subsystem
    /// (`crate::routing`). Control-plane: overflow-exempt and sent with
    /// link ARQ like every other control packet.
    LinkStateAd {
        /// The advertisement being disseminated.
        ad: LinkStateAd,
        /// The network this copy was transmitted on. Receivers re-flood on
        /// every *other* live interface (split horizon): everyone attached
        /// to `via` was already sent a copy by the same transmitter, which
        /// keeps flood cost linear in attachments instead of quadratic.
        via: NetworkId,
    },
    /// ICMP-source-quench-style congestion signal (RFC 792/896), sent by a
    /// gateway to a datagram source on buffer overflow. The paper contrasts
    /// RMS capacity with exactly this "ad hoc and often ineffective"
    /// mechanism (§4.4).
    Quench {
        /// Protocol tag of the dropped datagram.
        proto: u16,
        /// Destination the dropped datagram was headed to.
        dropped_dst: HostId,
    },
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Kind + kind-specific fields.
    pub kind: PacketKind,
    /// Transmission deadline used for queueing at every hop (§4.1, §4.3.1).
    pub deadline: SimTime,
    /// When the original send operation started (start of the delay clock).
    pub sent_at: SimTime,
    /// True once the wire has corrupted this packet.
    pub corrupted: bool,
    /// Hops traversed so far (TTL guard).
    pub hops: u8,
    /// Use link-level ARQ on each hop (set for control packets and for data
    /// on reliable RMSs).
    pub reliable: bool,
    /// Out-of-band security material riding on a `CreateReq`: the mechanism
    /// plan and stream key the receiver endpoint must adopt. (A production
    /// system would run a key-exchange protocol here; carrying it on the
    /// handshake keeps the simulation honest about *who knows the key*.)
    pub next_plan: Option<(MechanismPlan, Key)>,
    /// Explicit route chosen by the routing subsystem for RMS establishment
    /// packets; hops forward along it instead of consulting their tables.
    pub source_route: Option<SourceRoute>,
    /// The neighbour this packet was queued toward, frozen at enqueue time
    /// so a route change between enqueue and transmission-finish cannot
    /// deliver it to a host that is not even on the transmitting network.
    /// Metadata, not wire bytes.
    pub next_hop: Option<HostId>,
}

impl Packet {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        let route = self
            .source_route
            .as_ref()
            .map_or(0, |sr| 4 * sr.hops.len() as u64);
        BASE_HEADER_BYTES + route + self.kind_bytes()
    }

    fn kind_bytes(&self) -> u64 {
        match &self.kind {
            PacketKind::Data(d) => {
                let mut n = d.payload.len() as u64;
                if d.source.is_some() {
                    n += 8;
                }
                if d.target.is_some() {
                    n += 8;
                }
                if d.mac.is_some() {
                    n += 8;
                }
                if d.checksum.is_some() {
                    n += 4;
                }
                n
            }
            // Control packets: fixed small encodings.
            PacketKind::CreateReq { path, .. } => 64 + 4 * path.len() as u64,
            PacketKind::CreateAck { path, .. } => 24 + 4 * path.len() as u64,
            PacketKind::CreateNak { .. } => 24,
            PacketKind::Invite { .. } => 64,
            PacketKind::Release { .. } => 8,
            PacketKind::Raw { payload, .. } => 2 + payload.len() as u64,
            PacketKind::LinkStateAd { ad, .. } => 16 + 20 * ad.links.len() as u64,
            PacketKind::Quench { .. } => 8,
        }
    }

    /// True for control-plane packets (never piggybacked, small).
    pub fn is_control(&self) -> bool {
        !matches!(self.kind, PacketKind::Data(_) | PacketKind::Raw { .. })
    }

    /// Observability span id, when this is a data packet carrying one.
    pub fn span(&self) -> Option<u64> {
        match &self.kind {
            PacketKind::Data(d) => d.span,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload_len: usize) -> Packet {
        Packet {
            src: HostId(0),
            dst: HostId(1),
            kind: PacketKind::Data(DataPacket {
                rms: NetRmsId(1),
                seq: 0,
                payload: WireMsg::from(vec![0u8; payload_len]),
                source: None,
                target: None,
                mac: None,
                checksum: None,
                span: None,
            }),
            deadline: SimTime::ZERO,
            sent_at: SimTime::ZERO,
            corrupted: false,
            hops: 0,
            reliable: false,
            next_plan: None,
            source_route: None,
            next_hop: None,
        }
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = data_packet(100);
        assert_eq!(p.wire_bytes(), BASE_HEADER_BYTES + 100);
    }

    #[test]
    fn security_fields_add_overhead() {
        let mut p = data_packet(100);
        if let PacketKind::Data(d) = &mut p.kind {
            d.mac = Some(1);
            d.checksum = Some(2);
            d.source = Some(Label(1));
            d.target = Some(Label(2));
        }
        assert_eq!(p.wire_bytes(), BASE_HEADER_BYTES + 100 + 8 + 4 + 8 + 8);
    }

    #[test]
    fn control_classification() {
        assert!(!data_packet(1).is_control());
        let mut p = data_packet(1);
        p.kind = PacketKind::Release { rms: NetRmsId(1) };
        assert!(p.is_control());
        p.kind = PacketKind::Raw {
            proto: 7,
            payload: WireMsg::new(),
        };
        assert!(!p.is_control());
    }
}
