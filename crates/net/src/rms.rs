//! Per-endpoint state of a network-level RMS.

use std::collections::BTreeMap;

use dash_security::cipher::Key;
use dash_security::suite::MechanismPlan;
use dash_sim::stats::{Counter, Histogram};
use dash_sim::time::SimTime;
use rms_core::message::Label;
use rms_core::params::SharedParams;
use rms_core::wire::WireMsg;

use crate::ids::{HostId, NetRmsId, NetworkId};

/// Which end of the simplex stream this host holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmsRole {
    /// This host invokes send operations.
    Sender,
    /// This host's port receives deliveries.
    Receiver,
}

/// Delivery statistics kept at the receiving end.
#[derive(Debug, Default)]
pub struct RmsStats {
    /// Messages delivered to the client.
    pub delivered: Counter,
    /// Payload bytes delivered.
    pub bytes: Counter,
    /// Deliveries later than the RMS delay bound.
    pub late: Counter,
    /// Messages known lost (sequence gaps on an unreliable stream, or
    /// detected-corrupt drops).
    pub lost: Counter,
    /// Corrupted packets dropped by checksum/MAC verification.
    pub corrupt_dropped: Counter,
    /// Corrupted packets delivered (no checksum selected).
    pub corrupt_delivered: Counter,
    /// Duplicate or out-of-date packets discarded to preserve in-sequence
    /// delivery.
    pub stale_dropped: Counter,
    /// End-to-end delays, seconds.
    pub delays: Histogram,
}

/// A buffered out-of-order arrival on a reliable stream.
#[derive(Debug)]
pub struct Buffered {
    /// Decrypted payload (scatter-gather, shared with the arrival path).
    pub payload: WireMsg,
    /// Source label.
    pub source: Option<Label>,
    /// Target label.
    pub target: Option<Label>,
    /// Original send time.
    pub sent_at: SimTime,
    /// Observability span id riding with the message.
    pub span: Option<u64>,
}

/// When a reliable stream's reorder buffer exceeds this many messages the
/// RMS is declared failed (a persistent gap means a message was lost despite
/// ARQ — reliability can no longer be honoured, §2: failure is notified).
pub const REORDER_FAIL_THRESHOLD: usize = 64;

/// State of one network RMS endpoint.
#[derive(Debug)]
pub struct NetRms {
    /// Stream id (shared by both endpoints).
    pub id: NetRmsId,
    /// This host's role.
    pub role: RmsRole,
    /// The other endpoint.
    pub peer: HostId,
    /// Negotiated parameters (shared with reservations and control state).
    pub params: SharedParams,
    /// Security mechanisms selected at creation (§2.5).
    pub plan: MechanismPlan,
    /// Stream key for encryption/MAC (distributed during creation; a real
    /// system would run a key exchange here).
    pub key: Key,
    /// Networks the stream's path traverses (for failure notification).
    pub path: Vec<NetworkId>,
    /// Set when the stream has failed; sends are refused afterwards.
    pub failed: bool,
    /// Sender side: next sequence number.
    pub next_seq: u64,
    /// Sender side: minimum transmission deadline for the next packet
    /// (§4.3.1 ordering rule, maintained by the provider for its own sends).
    pub last_tx_deadline: SimTime,
    /// Monotone floor for send-side CPU-job deadlines (deadline-based
    /// process scheduling must not reorder one stream's packets, §4.1).
    pub last_send_job_deadline: SimTime,
    /// Monotone floor for receive-side CPU-job deadlines.
    pub last_recv_job_deadline: SimTime,
    /// Receiver side: highest sequence delivered so far.
    pub last_delivered: Option<u64>,
    /// Receiver side, reliable streams: out-of-order buffer.
    pub reorder: BTreeMap<u64, Buffered>,
    /// Receiver-side statistics.
    pub stats: RmsStats,
}

impl NetRms {
    /// Fresh endpoint state.
    pub fn new(
        id: NetRmsId,
        role: RmsRole,
        peer: HostId,
        params: SharedParams,
        plan: MechanismPlan,
        key: Key,
        path: Vec<NetworkId>,
    ) -> Self {
        NetRms {
            id,
            role,
            peer,
            params,
            plan,
            key,
            path,
            failed: false,
            next_seq: 0,
            last_tx_deadline: SimTime::ZERO,
            last_send_job_deadline: SimTime::ZERO,
            last_recv_job_deadline: SimTime::ZERO,
            last_delivered: None,
            reorder: BTreeMap::new(),
            stats: RmsStats::default(),
        }
    }

    /// Allocate the next send sequence number.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// True if `seq` would be stale (≤ the newest delivered) on an
    /// unreliable stream.
    pub fn is_stale(&self, seq: u64) -> bool {
        matches!(self.last_delivered, Some(last) if seq <= last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms(role: RmsRole) -> NetRms {
        NetRms::new(
            NetRmsId(1),
            role,
            HostId(2),
            rms_core::params::RmsParams::builder(10_000, 1_000)
                .build()
                .unwrap()
                .shared(),
            MechanismPlan::NONE,
            Key(1),
            vec![NetworkId(0)],
        )
    }

    #[test]
    fn seq_allocation_is_monotone() {
        let mut r = rms(RmsRole::Sender);
        assert_eq!(r.alloc_seq(), 0);
        assert_eq!(r.alloc_seq(), 1);
        assert_eq!(r.alloc_seq(), 2);
    }

    #[test]
    fn staleness() {
        let mut r = rms(RmsRole::Receiver);
        assert!(!r.is_stale(0));
        r.last_delivered = Some(5);
        assert!(r.is_stale(5));
        assert!(r.is_stale(3));
        assert!(!r.is_stale(6));
    }
}
