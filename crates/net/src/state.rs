//! The network layer's world state and the [`NetWorld`] trait that upper
//! layers implement to receive deliveries and events.
//!
//! `NetState` is deliberately non-generic: event closures capture only ids
//! and reach it through `W::net()`. Upward calls (deliveries, RMS events)
//! go through the `NetWorld` trait, so the subtransport crate can stack on
//! top without this crate knowing about it (paper Figure 1's
//! network-independent / network-dependent interface).

use rms_core::hash::DetHashMap;

use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::obs::Obs;
use dash_sim::rng::Rng;
use dash_sim::stats::Counter;
use dash_sim::time::{SimDuration, SimTime};
use dash_sim::trace::Trace;
use rms_core::compat::RmsRequest;
use rms_core::error::{FailReason, RejectReason};
use rms_core::message::Message;
use rms_core::params::SharedParams;
use rms_core::port::DeliveryInfo;
use rms_core::wire::WireMsg;

use dash_security::cipher::Key;
use dash_security::cost::CostModel;
use dash_security::suite::MechanismPlan;

use crate::ids::{CreateToken, HostId, NetRmsId, NetworkId};
use crate::iface::{Iface, QueueDiscipline};
use crate::network::Network;
use crate::rms::NetRms;
use crate::routing::{CandidatePath, Lsdb};

/// Global configuration of the network layer.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Creation handshake retry timeout.
    pub create_timeout: SimDuration,
    /// Creation handshake retry budget.
    pub create_retries: u32,
    /// Queue ordering for interfaces (deadline vs. FIFO baseline).
    pub discipline: QueueDiscipline,
    /// Hop budget before a packet is discarded.
    pub ttl: u8,
    /// Fixed per-packet protocol CPU cost (send and receive sides), on top
    /// of security mechanism costs.
    pub per_packet_cpu: CostModel,
    /// When true, gateways send source-quench packets on datagram overflow
    /// drops (the RFC 792/896 baseline behaviour, §4.4).
    pub quench_enabled: bool,
    /// Fault-seeding hook for the dash-check oracle: when true, interface
    /// ledgers record reservations without any capacity check
    /// ([`rms_core::admission::ResourceLedger::force_admit`]), so admission
    /// can oversubscribe — a deliberate §2.3 violation the semantic oracle
    /// must catch. Never enable outside verification runs.
    pub debug_force_admission: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            create_timeout: SimDuration::from_millis(250),
            create_retries: 3,
            discipline: QueueDiscipline::Deadline,
            ttl: 16,
            per_packet_cpu: CostModel::new(SimDuration::from_micros(5), SimDuration::from_nanos(1)),
            quench_enabled: true,
            debug_force_admission: false,
        }
    }
}

/// Network-layer-wide statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Packets handed to interfaces.
    pub packets_sent: Counter,
    /// Packets delivered to their destination host.
    pub packets_delivered: Counter,
    /// Packets lost on the wire (drop or down network).
    pub wire_drops: Counter,
    /// Packets dropped at gateways/interfaces due to queue overflow.
    pub overflow_drops: Counter,
    /// Packets dropped because their hop budget ran out.
    pub ttl_drops: Counter,
    /// Packets dropped for lack of a route.
    pub no_route_drops: Counter,
    /// Source-quench packets emitted.
    pub quenches_sent: Counter,
}

/// A route table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index into the host's interface list.
    pub iface: usize,
    /// The neighbour the packet is handed to next.
    pub next_hop: HostId,
}

/// An in-flight creation attempt at its creator.
#[derive(Debug)]
pub struct PendingCreate {
    /// The RMS id allocated for the stream.
    pub rms: NetRmsId,
    /// Data-receiver host (peer of the sender).
    pub peer: HostId,
    /// Negotiated parameters being requested along the path.
    pub params: SharedParams,
    /// Attempts so far.
    pub attempts: u32,
    /// Retry timer.
    pub timer: Option<TimerHandle>,
    /// Set if this create answers a peer's invite.
    pub invite: Option<CreateToken>,
    /// Security mechanisms selected for the stream (§2.5).
    pub plan: MechanismPlan,
    /// Stream key the receiver was given on the request.
    pub key: Key,
    /// The original request, kept so a retry can re-resolve candidate
    /// paths after a fault-driven reconvergence.
    pub request: RmsRequest,
    /// Ordered alternate paths resolved by the routing subsystem.
    pub alternates: Vec<CandidatePath>,
    /// Index of the alternate currently being attempted.
    pub alt_idx: usize,
    /// [`NetState::route_generation`] at resolution time: a mismatch on
    /// retry means the topology changed and the alternates are stale.
    pub route_gen: u64,
}

/// An invite (receiver-side create) awaiting the peer's sender-side create.
#[derive(Debug)]
pub struct PendingInvite {
    /// The data-sender host being invited.
    pub peer: HostId,
    /// Parameters requested.
    pub params: SharedParams,
    /// Retry timer.
    pub timer: Option<TimerHandle>,
    /// Attempts so far.
    pub attempts: u32,
}

/// Per-host network-layer state.
#[derive(Debug)]
pub struct NetHost {
    /// This host's id.
    pub id: HostId,
    /// Attached interfaces.
    pub ifaces: Vec<Iface>,
    /// First-hop routes: destination → (interface, next hop). Recomputed
    /// from the LSDB whenever `routes_dirty_since` is set (see
    /// [`crate::routing::ensure_host_routes`]).
    pub routes: DetHashMap<HostId, Route>,
    /// This host's link-state database (one ad per known origin).
    pub lsdb: Lsdb,
    /// Sequence number of the last link-state ad this host originated.
    pub lsa_seq: u64,
    /// When set, `routes` may no longer reflect the LSDB / availability
    /// flags; the value is the earliest trigger time (used to measure
    /// reconvergence latency when the table is lazily rebuilt).
    pub routes_dirty_since: Option<SimTime>,
    /// Pinned next hops for RMSs established through this host: data and
    /// teardown follow the path admission actually reserved, not whatever
    /// the current table says.
    pub rms_next: DetHashMap<NetRmsId, Route>,
    /// Live RMS endpoints (both roles).
    pub rms: DetHashMap<NetRmsId, NetRms>,
    /// Reservations held at this host for streams passing through it:
    /// RMS → (outbound interface index, reserved parameters).
    pub reservations: DetHashMap<NetRmsId, (usize, SharedParams)>,
    /// Creation attempts initiated here.
    pub pending: DetHashMap<CreateToken, PendingCreate>,
    /// Invites initiated here (receiver-side creates).
    pub invites: DetHashMap<CreateToken, PendingInvite>,
    /// When this host's CPU becomes free (used by the default FIFO CPU
    /// model of [`NetWorld::charge_cpu`]).
    pub cpu_free_at: SimTime,
    /// False while the host is crashed (fault injection): it neither sends,
    /// forwards, nor receives, and its packets die on arrival.
    pub up: bool,
}

impl NetHost {
    /// Index of the interface attached to `network`, if any.
    pub fn iface_on(&self, network: NetworkId) -> Option<usize> {
        self.ifaces.iter().position(|i| i.network == network)
    }
}

/// The complete state of the network layer.
#[derive(Debug)]
pub struct NetState {
    /// Configuration.
    pub config: NetConfig,
    /// All networks, indexed by [`NetworkId`].
    pub networks: Vec<Network>,
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<NetHost>,
    /// Deterministic randomness for the wire.
    pub rng: Rng,
    /// Debug trace.
    pub trace: Trace,
    /// Cross-layer observability: typed events, metric registry, and
    /// message lifecycle spans (see [`dash_sim::obs`]). Inert until
    /// [`Obs::enable`] or a sink is installed.
    pub obs: Obs,
    /// Global statistics.
    pub stats: NetStats,
    /// Partitioned host pairs (fault injection): traffic between the two
    /// hosts is silently dropped on every network hop. Keys are normalized
    /// `(min, max)` id pairs; a `BTreeSet` keeps iteration deterministic.
    pub partitions: std::collections::BTreeSet<(u32, u32)>,
    /// Bumped by every fault-driven reconvergence
    /// ([`crate::routing::mark_routes_dirty`]); pending creation attempts
    /// compare against it to detect stale candidate paths.
    pub route_generation: u64,
    /// Logical-process context when this world runs as one shard replica
    /// of a parallel run (`None` in ordinary serial execution). Boxed:
    /// the serial hot path pays one pointer, not an outbox.
    pub shard: Option<Box<crate::shard::ShardCtx>>,
    next_rms: u64,
    next_token: u64,
}

impl NetState {
    /// Create an empty state (normally built via
    /// [`crate::topology::TopologyBuilder`]).
    pub fn new(config: NetConfig, seed: u64) -> Self {
        NetState {
            config,
            networks: Vec::new(),
            hosts: Vec::new(),
            rng: Rng::new(seed),
            trace: Trace::default(),
            obs: Obs::new(),
            stats: NetStats::default(),
            partitions: std::collections::BTreeSet::new(),
            route_generation: 0,
            shard: None,
            next_rms: 1,
            next_token: 1,
        }
    }

    /// Whether this world executes protocol activity for `host`.
    ///
    /// Always true in serial execution; under the parallel executor each
    /// replica owns exactly one host and everything else is reached over
    /// wire envelopes (see [`crate::shard`]).
    #[inline]
    pub fn owns(&self, host: HostId) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.owns(host),
        }
    }

    /// Whether a wire hop toward `next` is scheduled as a local event.
    /// False means the transmitting side must divert the finished
    /// traversal into the outbox as a [`crate::shard::WireEnvelope`] —
    /// either toward another LP (parallel execution) or toward the
    /// real-time substrate (wire-divert mode).
    #[inline]
    pub fn wire_is_local(&self, next: HostId) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.wire_is_local(next),
        }
    }

    /// Switch this world into logical-process mode as `owner`'s replica.
    ///
    /// Three things must stop depending on global, cross-host execution
    /// order for a partitioned run to merge byte-identically:
    ///
    /// * the wire RNG — re-seeded as a pure function of `(root_seed,
    ///   owner)`, so each host's draw stream is the same no matter which
    ///   other hosts' draws would have interleaved in a shared world;
    /// * id allocation — rebased to the disjoint namespace
    ///   `(owner + 1) << 40`, so RMS ids and tokens minted independently
    ///   on different shards never collide;
    /// * wire delivery — [`crate::pipeline`] diverts transmissions toward
    ///   unowned hosts into the shard outbox instead of scheduling them.
    pub fn enable_lp_mode(&mut self, owner: HostId, root_seed: u64) {
        self.shard = Some(Box::new(crate::shard::ShardCtx {
            owner: crate::shard::Ownership::Host(owner),
            outbox: Vec::new(),
            out_seq: 0,
        }));
        self.rng = Rng::new(root_seed).fork(owner.0 as u64);
        self.set_id_namespace((owner.0 as u64 + 1) << 40);
    }

    /// Divert every wire hop into the outbox while this world keeps
    /// executing protocol activity for *all* hosts — the real-time
    /// backend's substrate mode. Unlike [`NetState::enable_lp_mode`],
    /// nothing else changes: RNG streams, id allocation, routing, and
    /// fault application are exactly the serial world's.
    pub fn enable_wire_divert(&mut self) {
        self.shard = Some(Box::new(crate::shard::ShardCtx {
            owner: crate::shard::Ownership::AllDivertWire,
            outbox: Vec::new(),
            out_seq: 0,
        }));
    }

    /// Rebase RMS-id and token allocation to start at `base`
    /// (see [`NetState::enable_lp_mode`]).
    pub fn set_id_namespace(&mut self, base: u64) {
        self.next_rms = base;
        self.next_token = base;
    }

    /// Drain the wire envelopes diverted toward other logical processes
    /// since the last call. Empty (and allocation-free) in serial mode.
    pub fn take_outbox(&mut self) -> Vec<crate::shard::WireEnvelope> {
        match &mut self.shard {
            Some(s) if !s.outbox.is_empty() => std::mem::take(&mut s.outbox),
            _ => Vec::new(),
        }
    }

    /// Whether traffic between `a` and `b` is currently partitioned.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitions.contains(&Self::pair(a, b))
    }

    /// Install a partition between `a` and `b` (idempotent).
    pub fn partition(&mut self, a: HostId, b: HostId) {
        self.partitions.insert(Self::pair(a, b));
    }

    /// Remove the partition between `a` and `b` (idempotent).
    pub fn heal_partition(&mut self, a: HostId, b: HostId) {
        self.partitions.remove(&Self::pair(a, b));
    }

    fn pair(a: HostId, b: HostId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// Shared access to a host.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn host(&self, id: HostId) -> &NetHost {
        &self.hosts[id.0 as usize]
    }

    /// Mutable access to a host.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn host_mut(&mut self, id: HostId) -> &mut NetHost {
        &mut self.hosts[id.0 as usize]
    }

    /// Shared access to a network.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn network(&self, id: NetworkId) -> &Network {
        &self.networks[id.0 as usize]
    }

    /// Mutable access to a network.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn network_mut(&mut self, id: NetworkId) -> &mut Network {
        &mut self.networks[id.0 as usize]
    }

    /// Allocate a fresh, globally unique RMS id.
    pub fn alloc_rms_id(&mut self) -> NetRmsId {
        let id = NetRmsId(self.next_rms);
        self.next_rms += 1;
        id
    }

    /// Allocate a fresh creation token.
    pub fn alloc_token(&mut self) -> CreateToken {
        let t = CreateToken(self.next_token);
        self.next_token += 1;
        t
    }

    /// The hop-by-hop path from `src` to `dst` as `(hop host, iface index,
    /// network, next hop)` tuples, or `None` if unroutable.
    ///
    /// Stale-safe: a hop whose table was marked dirty by the routing layer
    /// is consulted through an ad-hoc recomputation (not cached — this
    /// method takes `&self`), so callers holding only shared access (e.g.
    /// ST negotiation) always see reconverged routes.
    pub fn path(
        &self,
        src: HostId,
        dst: HostId,
    ) -> Option<Vec<(HostId, usize, NetworkId, HostId)>> {
        let mut here = src;
        let mut out = Vec::new();
        let mut hops = 0;
        while here != dst {
            let host = self.host(here);
            let route = if host.routes_dirty_since.is_some() {
                *crate::routing::primary_routes(self, here).get(&dst)?
            } else {
                *host.routes.get(&dst)?
            };
            let network = self.host(here).ifaces[route.iface].network;
            out.push((here, route.iface, network, route.next_hop));
            here = route.next_hop;
            hops += 1;
            if hops > self.config.ttl {
                return None;
            }
        }
        Some(out)
    }
}

/// Events the network layer reports upward about RMS lifecycle.
#[derive(Debug)]
pub enum NetRmsEvent {
    /// A creation initiated here (sender side, or sender side on behalf of
    /// a peer invite) finished successfully.
    Created {
        /// The creator's token.
        token: CreateToken,
        /// The new stream.
        rms: NetRmsId,
        /// Its negotiated parameters.
        params: SharedParams,
    },
    /// A creation initiated here failed.
    CreateFailed {
        /// The creator's token.
        token: CreateToken,
        /// Why.
        reason: RejectReason,
    },
    /// A receiving endpoint appeared at this host (a peer created a stream
    /// toward us). If `invite` is set, it answers our earlier invite.
    InboundCreated {
        /// The new stream.
        rms: NetRmsId,
        /// The sending peer.
        peer: HostId,
        /// Negotiated parameters.
        params: SharedParams,
        /// Our invite token, when this answers a receiver-side create.
        invite: Option<CreateToken>,
    },
    /// This host now owns the *sending* end of a stream it did not ask for:
    /// it accepted a peer's invite (§2.4 receiver-side creation).
    SenderCreatedByInvite {
        /// The new stream.
        rms: NetRmsId,
        /// The receiving peer (the inviter).
        peer: HostId,
        /// Negotiated parameters.
        params: SharedParams,
    },
    /// An invite we sent was refused or timed out.
    InviteFailed {
        /// Our invite token.
        token: CreateToken,
        /// Why.
        reason: RejectReason,
    },
    /// An RMS endpoint at this host failed (§2 property 3).
    Failed {
        /// The stream.
        rms: NetRmsId,
        /// Why.
        reason: FailReason,
    },
    /// The peer closed the stream.
    Closed {
        /// The stream.
        rms: NetRmsId,
    },
}

/// Continuation run when a charged CPU job completes
/// (see [`NetWorld::charge_cpu`]).
pub type CpuCont<W> = Box<dyn FnOnce(&mut Sim<W>)>;

/// The world-state contract between the network layer and whatever runs
/// above it.
pub trait NetWorld: Sized + 'static {
    /// The embedded network state.
    fn net(&mut self) -> &mut NetState;
    /// Shared access to the embedded network state.
    fn net_ref(&self) -> &NetState;

    /// Charge protocol CPU time at `host`, then run `cont`.
    ///
    /// The default implementation models a single CPU per host with FIFO
    /// (run-to-completion) scheduling: jobs execute in submission order, so
    /// protocol processing never reorders a stream's packets. Worlds with a
    /// real [`dash_sim::cpu::Cpu`] override this to get deadline-based
    /// short-term scheduling (§4.1); `deadline` and `stream` exist for
    /// those overrides.
    fn charge_cpu(
        sim: &mut Sim<Self>,
        host: HostId,
        cost: SimDuration,
        deadline: SimTime,
        stream: u64,
        cont: CpuCont<Self>,
    ) {
        let _ = (deadline, stream);
        fifo_charge_cpu(sim, host, cost, cont);
    }

    /// A message arrived on a receiving RMS endpoint at `host`.
    fn deliver_up(
        sim: &mut Sim<Self>,
        host: HostId,
        rms: NetRmsId,
        msg: Message,
        info: DeliveryInfo,
    );

    /// An RMS lifecycle event occurred at `host`.
    fn rms_event(sim: &mut Sim<Self>, host: HostId, event: NetRmsEvent);

    /// A raw datagram arrived (baseline traffic). Default: discarded.
    fn deliver_datagram(
        sim: &mut Sim<Self>,
        host: HostId,
        src: HostId,
        proto: u16,
        payload: WireMsg,
        sent_at: SimTime,
    ) {
        let _ = (sim, host, src, proto, payload, sent_at);
    }

    /// A source-quench arrived (baseline congestion signal). Default:
    /// ignored — which is exactly the failure mode the paper ascribes to
    /// ad-hoc congestion control.
    fn deliver_quench(sim: &mut Sim<Self>, host: HostId, proto: u16, dropped_dst: HostId) {
        let _ = (sim, host, proto, dropped_dst);
    }

    /// A network changed availability: `up = false` after
    /// [`crate::pipeline::fail_network`], `up = true` after
    /// [`crate::pipeline::restore_network`]. Layers that cache network
    /// resources (the ST, §4.2) hook this to fail over or re-establish.
    /// Default: ignored.
    fn network_event(sim: &mut Sim<Self>, network: NetworkId, up: bool) {
        let _ = (sim, network, up);
    }
}

/// The default CPU model shared by [`NetWorld::charge_cpu`] implementations:
/// one CPU per host, FIFO run-to-completion. Worlds that override
/// `charge_cpu` (e.g. to use an EDF [`dash_sim::cpu::Cpu`]) can fall back to
/// this for hosts without a modelled CPU.
pub fn fifo_charge_cpu<W: NetWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    cost: SimDuration,
    cont: CpuCont<W>,
) {
    let now = sim.now();
    let h = sim.state.net().host_mut(host);
    let start = if h.cpu_free_at > now {
        h.cpu_free_at
    } else {
        now
    };
    let finish = start.saturating_add(cost);
    h.cpu_free_at = finish;
    if finish <= now {
        cont(sim);
    } else {
        sim.schedule_at(finish, cont);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_allocation_is_unique() {
        let mut s = NetState::new(NetConfig::default(), 1);
        let a = s.alloc_rms_id();
        let b = s.alloc_rms_id();
        assert_ne!(a, b);
        let t1 = s.alloc_token();
        let t2 = s.alloc_token();
        assert_ne!(t1, t2);
    }

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert!(c.create_retries > 0);
        assert!(c.ttl > 1);
        assert_eq!(c.discipline, QueueDiscipline::Deadline);
    }
}
