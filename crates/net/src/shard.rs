//! Shard-boundary support for the conservative parallel executor.
//!
//! `dash::par` runs one *logical process* (LP) per host: a full replica
//! world whose protocol state only ever populates for the one host it
//! owns. The single point where LPs interact is the wire — a packet
//! finishing transmission toward a host the world does not own is
//! diverted into the [`ShardCtx::outbox`] as a [`WireEnvelope`] instead
//! of being scheduled locally. The executor routes envelopes to the
//! owning LP, which injects them with
//! [`dash_sim::engine::Sim::schedule_arrival`] under the canonical
//! `(deliver_at, source host, per-source seq)` key, so arrival order is
//! a pure function of what was sent — never of how hosts were grouped
//! onto worker threads or in which batch an envelope crossed a shard.
//!
//! Everything else a world does (fault plans, replicated topology,
//! routing-table rebuilds over the replica LSDB) is computed locally and
//! identically in every LP; see `DESIGN.md` § "Parallel execution model"
//! for the partition-independence argument.

use dash_sim::time::SimTime;

use crate::ids::HostId;
use crate::packet::Packet;

/// A wire delivery crossing a logical-process boundary.
///
/// Ordering is `(deliver_at, src, seq)` — the fixed merge order the
/// executor and the engine's arrival keys agree on.
#[derive(Debug)]
pub struct WireEnvelope {
    /// Absolute arrival time at `dst` (transmission finish + wire delay).
    pub deliver_at: SimTime,
    /// The transmitting host (the owner of the generating LP).
    pub src: HostId,
    /// Per-source monotone sequence number; with `src`, a total tie-break
    /// among co-timed arrivals.
    pub seq: u64,
    /// The receiving host (owner of the LP this envelope must reach).
    pub dst: HostId,
    /// The packet itself, wire effects (corruption flag, ARQ delay)
    /// already applied by the transmitting side.
    pub packet: Packet,
}

impl WireEnvelope {
    /// The engine tie-break key for this envelope's arrival event.
    pub fn arrival_key(&self) -> u64 {
        dash_sim::engine::arrival_key(self.src.0, self.seq)
    }
}

/// Which hosts' protocol activity a diverted world executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ownership {
    /// One host's replica: the parallel executor's LP mode. Everything
    /// toward other hosts leaves through the outbox.
    Host(HostId),
    /// All hosts, but every wire hop still leaves through the outbox —
    /// the real-time backend's substrate mode, where an external carriage
    /// layer (`dash-rt`'s `Substrate`) owns packet delivery.
    AllDivertWire,
}

/// Diversion context: present when wire deliveries leave the world
/// through the outbox instead of being scheduled locally — either because
/// the world is one LP of a parallel run
/// ([`crate::state::NetState::enable_lp_mode`]) or because an external
/// substrate carries its packets
/// ([`crate::state::NetState::enable_wire_divert`]).
#[derive(Debug)]
pub struct ShardCtx {
    /// Whose protocol activity this world executes.
    pub owner: Ownership,
    /// Wire deliveries diverted off-world, accumulated since the last
    /// [`crate::state::NetState::take_outbox`].
    pub outbox: Vec<WireEnvelope>,
    /// Next per-source envelope sequence number.
    pub out_seq: u64,
}

impl ShardCtx {
    /// Whether this world executes protocol activity for `host`.
    pub fn owns(&self, host: HostId) -> bool {
        match self.owner {
            Ownership::Host(h) => h == host,
            Ownership::AllDivertWire => true,
        }
    }

    /// Whether a wire hop toward `next` stays inside this world (is
    /// scheduled as a local event) rather than leaving via the outbox.
    pub fn wire_is_local(&self, next: HostId) -> bool {
        match self.owner {
            Ownership::Host(h) => h == next,
            Ownership::AllDivertWire => false,
        }
    }
}
