//! Distributed QoS routing: link-state dissemination, constrained
//! multipath selection, and admission-aware re-routing.
//!
//! The original reproduction computed one static shortest-hop table
//! out-of-band at build time and rebuilt it globally on failure. This
//! module replaces that with a routing *subsystem*:
//!
//! - **Dissemination** ([`lsdb`], [`flood_from`]): hosts flood
//!   sequence-numbered, TTL-bounded [`lsdb::LinkStateAd`] control packets
//!   (overflow-exempt and link-ARQ'd like all control traffic) carrying
//!   per-interface static delay, capacity, and residual admission headroom
//!   sampled from the interface ledgers. Floods are triggered by fault
//!   events, use deterministic per-interface/per-peer order, and apply
//!   split horizon on the arrival network so cost stays linear.
//! - **Computation** ([`spf`]): a deterministic shortest-hop table for
//!   datagram forwarding plus up to [`spf::K_ALTERNATES`] loop-free
//!   alternate paths per destination with a fixed `(length, hop sequence)`
//!   tie-break, filtered per-request by negotiating the `A + B·size` delay
//!   bound and capacity demand against each path's combined service table.
//! - **Admission-aware establishment** ([`candidate_paths`] +
//!   `pipeline::create_rms`): RMS creation walks the alternates in order —
//!   advertised-headroom-sufficient paths first — and falls back to the
//!   next one on a creation NAK instead of failing outright.
//! - **Event-driven reconvergence** ([`mark_routes_dirty`] +
//!   [`ensure_host_routes`]): fault events bump a route generation and
//!   trigger scoped re-floods; each host lazily recomputes its table the
//!   next time it needs one, recording the reconvergence latency in the
//!   `routing.recompute_latency` histogram.
//!
//! Determinism: the LSDB is a `BTreeMap`, flood order follows interface
//! and attachment order, sequence numbers deduplicate re-floods, and every
//! tie-break is total — replays are byte-identical.

pub mod lsdb;
pub mod spf;

pub use lsdb::{LinkInfo, LinkStateAd, Lsdb};
pub use spf::{k_paths, primary_routes, AltPath, K_ALTERNATES};

use dash_sim::engine::Sim;
use dash_sim::obs::ObsEvent;
use dash_sim::time::SimTime;
use rms_core::bandwidth::implied_bandwidth;
use rms_core::compat::{negotiate, RmsRequest};
use rms_core::delay::DelayBoundKind;
use rms_core::error::{RejectReason, RmsError};
use rms_core::params::RmsParams;

use dash_security::suite::{select_mechanisms, MechanismPlan};

use crate::ids::{HostId, NetworkId};
use crate::packet::{Packet, PacketKind};
use crate::pipeline::{combined_capabilities_on, combined_service_table_on, enqueue_on};
use crate::state::{NetState, NetWorld};

/// One viable alternate for an RMS creation: the path, the parameters and
/// security plan negotiated against *that* path, and its ranking inputs.
#[derive(Debug, Clone)]
pub struct CandidatePath {
    /// Hops after the creator, ending with the peer.
    pub hops: Vec<HostId>,
    /// `networks[i]` carries the packet to `hops[i]`.
    pub networks: Vec<NetworkId>,
    /// Parameters negotiated against this path's combined service table.
    pub params: rms_core::params::SharedParams,
    /// Security mechanisms selected for this path's combined capabilities.
    pub plan: MechanismPlan,
    /// Smallest advertised admission headroom along the path, bytes/s.
    pub min_headroom_bps: f64,
    /// True for the pure `(length, hops)` shortest path: establishing on
    /// any other candidate counts as a `routing.alternate_wins`.
    pub is_primary: bool,
}

/// Average bandwidth a stream with `params` will load its path with,
/// bytes/s — the quantity admission control reserves (deterministic) or
/// records (statistical). Used to rank candidates against advertised
/// headroom.
pub fn demand_bps(params: &RmsParams) -> f64 {
    match &params.delay.kind {
        DelayBoundKind::Deterministic => implied_bandwidth(params),
        DelayBoundKind::Statistical(spec) => spec.average_load,
        DelayBoundKind::BestEffort => 0.0,
    }
}

/// Snapshot `host`'s local link state (per-interface static figures plus
/// the current admission headroom of each ledger).
pub fn local_links(state: &NetState, host: HostId) -> Vec<LinkInfo> {
    state
        .host(host)
        .ifaces
        .iter()
        .map(|iface| {
            let network = state.network(iface.network);
            LinkInfo {
                network: iface.network,
                up: !network.down,
                fixed_delay: network.spec.propagation,
                per_byte_delay: network.spec.per_byte_delay(),
                capacity_bps: network.spec.rate_bps,
                headroom_bps: iface.ledger.headroom_bps(),
                headroom_buffer: iface.ledger.headroom_buffer(),
            }
        })
        .collect()
}

/// Seed every host's LSDB with a fresh ad from every host (build time and
/// full rebuilds). Sequence numbers keep advancing, so seeding after live
/// floods never installs stale entries.
pub fn seed_lsdbs(state: &mut NetState) {
    let mut ads = Vec::with_capacity(state.hosts.len());
    for h in 0..state.hosts.len() {
        let id = HostId(h as u32);
        state.hosts[h].lsa_seq += 1;
        ads.push(LinkStateAd {
            origin: id,
            seq: state.hosts[h].lsa_seq,
            stamped_at: SimTime::ZERO,
            links: local_links(state, id),
        });
    }
    for host in &mut state.hosts {
        for ad in &ads {
            host.lsdb.install(ad.clone());
        }
    }
}

/// Bump the route generation and mark every host's table stale as of
/// `now`. Called by fault events (network down/up, host crash/restart):
/// live availability flags changed, so every table may be wrong. Tables
/// reconverge lazily via [`ensure_host_routes`]; in-flight creation
/// attempts notice the generation bump and re-resolve their candidates.
pub fn mark_routes_dirty(state: &mut NetState, now: SimTime) {
    state.route_generation += 1;
    for host in &mut state.hosts {
        host.routes_dirty_since = Some(host.routes_dirty_since.map_or(now, |d| d.min(now)));
    }
}

/// Recompute `host`'s first-hop table if the routing layer marked it stale,
/// recording the reconvergence latency (trigger → table rebuilt) in
/// `routing.recompute_latency`.
pub fn ensure_host_routes(state: &mut NetState, now: SimTime, host: HostId) {
    let Some(dirty_since) = state.host(host).routes_dirty_since else {
        return;
    };
    let routes = spf::primary_routes(state, host);
    let h = state.host_mut(host);
    h.routes = routes;
    h.routes_dirty_since = None;
    if state.obs.is_active() {
        state.obs.emit(
            now,
            ObsEvent::RoutingRecompute {
                host: host.0,
                latency_s: now.saturating_since(dirty_since).as_secs_f64(),
            },
        );
    }
}

/// Build and flood `origin`'s current link-state ad to its neighbours:
/// one reliable control packet per attached peer, interface-major then
/// attachment order (both deterministic). No-op while `origin` is crashed.
pub fn flood_from<W: NetWorld>(sim: &mut Sim<W>, origin: HostId) {
    let now = sim.now();
    let ad = {
        let net = sim.state.net();
        // Under the parallel executor every replica applies the same
        // fault plan locally, so the witness loops in fail/restore would
        // flood from every attached host in every replica. Only the
        // owning logical process may *originate* packets for a host; the
        // other replicas learn of the flood when its LSA envelopes arrive.
        if !net.owns(origin) {
            return;
        }
        if !net.host(origin).up {
            return;
        }
        net.host_mut(origin).lsa_seq += 1;
        let seq = net.host(origin).lsa_seq;
        let ad = LinkStateAd {
            origin,
            seq,
            stamped_at: now,
            links: local_links(net, origin),
        };
        let h = net.host_mut(origin);
        h.lsdb.install(ad.clone());
        h.routes_dirty_since = Some(h.routes_dirty_since.map_or(now, |d| d.min(now)));
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::RoutingFlood {
                    origin: origin.0,
                    seq,
                },
            );
        }
        ad
    };
    flood_ad(sim, origin, ad, 0, None);
}

/// Transmit a copy of `ad` from `from` to every attached peer, skipping
/// down networks and (for re-floods) the arrival network.
fn flood_ad<W: NetWorld>(
    sim: &mut Sim<W>,
    from: HostId,
    ad: LinkStateAd,
    hops: u8,
    exclude: Option<NetworkId>,
) {
    let now = sim.now();
    let mut sends: Vec<(usize, NetworkId, HostId)> = Vec::new();
    {
        let net = sim.state.net_ref();
        for (idx, iface) in net.host(from).ifaces.iter().enumerate() {
            let network = iface.network;
            if Some(network) == exclude || net.network(network).down {
                continue;
            }
            for &peer in &net.network(network).attached {
                if peer != from {
                    sends.push((idx, network, peer));
                }
            }
        }
    }
    for (iface_idx, via, peer) in sends {
        let packet = Packet {
            src: from,
            dst: peer,
            kind: PacketKind::LinkStateAd {
                ad: ad.clone(),
                via,
            },
            deadline: now,
            sent_at: now,
            corrupted: false,
            hops,
            reliable: true,
            next_plan: None,
            source_route: None,
            next_hop: Some(peer),
        };
        enqueue_on(sim, from, iface_idx, packet);
    }
}

/// An LSA arrived at `host`: install it, mark the table stale if it was
/// fresh, and re-flood on every other live interface while the hop budget
/// lasts. Duplicates (stale sequence numbers) die here, bounding each
/// flood at one re-transmission per host.
pub(crate) fn handle_lsa<W: NetWorld>(sim: &mut Sim<W>, host: HostId, packet: Packet) {
    let (ad, via) = match packet.kind {
        PacketKind::LinkStateAd { ad, via } => (ad, via),
        _ => unreachable!(),
    };
    let hops = packet.hops;
    let fresh = {
        let net = sim.state.net();
        let stamped = ad.stamped_at;
        let h = net.host_mut(host);
        if h.lsdb.install(ad.clone()) {
            h.routes_dirty_since = Some(h.routes_dirty_since.map_or(stamped, |d| d.min(stamped)));
            true
        } else {
            false
        }
    };
    if !fresh {
        return;
    }
    if hops < sim.state.net_ref().config.ttl {
        flood_ad(sim, host, ad, hops + 1, Some(via));
    }
}

/// The `(hop host, iface index, network, next hop)` tuples of an explicit
/// path, or `None` if some hop lacks the interface the path assumes.
pub fn path_tuples(
    state: &NetState,
    creator: HostId,
    hops: &[HostId],
    networks: &[NetworkId],
) -> Option<Vec<(HostId, usize, NetworkId, HostId)>> {
    let mut out = Vec::with_capacity(hops.len());
    let mut here = creator;
    for (i, &network) in networks.iter().enumerate() {
        let iface = state.host(here).iface_on(network)?;
        out.push((here, iface, network, hops[i]));
        here = hops[i];
    }
    Some(out)
}

/// Resolve the ordered alternate list for an RMS creation from `creator`
/// to `peer`: up to [`K_ALTERNATES`] loop-free paths, each negotiated
/// against its own combined service table (dropping paths that cannot meet
/// the delay bound or capacity demand), ranked with
/// advertised-headroom-sufficient paths first and the `(length, hops)`
/// order preserved within each group.
///
/// # Errors
///
/// [`RejectReason::NoRoute`] when no live path exists; otherwise the first
/// path's negotiation error when none negotiates.
pub fn candidate_paths(
    state: &NetState,
    creator: HostId,
    peer: HostId,
    request: &RmsRequest,
) -> Result<Vec<CandidatePath>, RmsError> {
    let paths = spf::k_paths(state, creator, peer, K_ALTERNATES);
    if paths.is_empty() {
        return Err(RmsError::CreationRejected(RejectReason::NoRoute));
    }
    let mut first_err: Option<RmsError> = None;
    let mut viable: Vec<CandidatePath> = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        let Some(tuples) = path_tuples(state, creator, &p.hops, &p.networks) else {
            continue;
        };
        let table = combined_service_table_on(state, &tuples);
        match negotiate(&table, request) {
            Ok(negotiated) => {
                let params = negotiated.shared();
                let caps = combined_capabilities_on(state, &tuples);
                let (plan, _) = select_mechanisms(&params, &caps);
                viable.push(CandidatePath {
                    hops: p.hops.clone(),
                    networks: p.networks.clone(),
                    params,
                    plan,
                    min_headroom_bps: p.min_headroom_bps,
                    is_primary: i == 0,
                });
            }
            Err(e) => {
                first_err.get_or_insert(e.into());
            }
        }
    }
    if viable.is_empty() {
        return Err(first_err.unwrap_or(RmsError::CreationRejected(RejectReason::NoRoute)));
    }
    // Stable partition: paths whose advertised headroom covers the demand
    // first. `false < true`, and the sort is stable, so the `(length,
    // hops)` order survives within each group.
    viable.sort_by_key(|c| demand_bps(&c.params) > c.min_headroom_bps);
    Ok(viable)
}
