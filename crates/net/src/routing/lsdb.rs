//! Link-state advertisements and the per-host link-state database.
//!
//! Every host periodically (event-driven, not timed: on fault events and
//! topology changes) floods a [`LinkStateAd`] describing its interfaces:
//! the attached network, its static delay figures, its capacity, and the
//! *residual admission headroom* sampled from the interface's
//! [`rms_core::admission::ResourceLedger`]. Each host accumulates the ads
//! it has seen in an [`Lsdb`]; sequence numbers make installation
//! idempotent and flood-safe (a host re-floods a given `(origin, seq)` at
//! most once), and a generation counter lets dependent computations detect
//! staleness cheaply.

use std::collections::BTreeMap;

use dash_sim::time::{SimDuration, SimTime};

use crate::ids::{HostId, NetworkId};

/// What one host advertises about one of its interfaces. Entries appear in
/// interface order, so a link's position in [`LinkStateAd::links`] is the
/// advertiser's interface index.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkInfo {
    /// The attached network.
    pub network: NetworkId,
    /// Whether the network was up when the ad was stamped. Informational:
    /// path computation reads the *live* availability flags (the simulator
    /// models instantaneous link-layer failure detection) while the QoS
    /// attributes below genuinely disseminate by flooding.
    pub up: bool,
    /// The network's one-way propagation delay (the `A` of `A + B·size`).
    pub fixed_delay: SimDuration,
    /// Serialization delay per byte (the `B` of `A + B·size`).
    pub per_byte_delay: SimDuration,
    /// Nominal capacity, bits per second.
    pub capacity_bps: f64,
    /// Residual deterministic admission headroom on the advertiser's
    /// interface, bytes per second (see
    /// [`rms_core::admission::ResourceLedger::headroom_bps`]).
    pub headroom_bps: f64,
    /// Residual buffer headroom on the advertiser's interface, bytes.
    pub headroom_buffer: u64,
}

/// A flooded link-state advertisement: one host's view of its own links.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStateAd {
    /// The advertising host.
    pub origin: HostId,
    /// Monotone per-origin sequence number; newer wins, equal is a duplicate.
    pub seq: u64,
    /// Simulation time the origin built this ad (drives the reconvergence
    /// latency metric — never wall-clock).
    pub stamped_at: SimTime,
    /// One entry per interface, in interface order.
    pub links: Vec<LinkInfo>,
}

/// A host's accumulated link-state database.
#[derive(Debug, Clone, Default)]
pub struct Lsdb {
    entries: BTreeMap<HostId, LinkStateAd>,
    generation: u64,
}

impl Lsdb {
    /// Install `ad` if it is newer than what we hold for its origin.
    /// Returns `true` (and bumps the generation) iff the database changed —
    /// the caller's cue to recompute routes and re-flood.
    pub fn install(&mut self, ad: LinkStateAd) -> bool {
        match self.entries.get(&ad.origin) {
            Some(have) if have.seq >= ad.seq => false,
            _ => {
                self.entries.insert(ad.origin, ad);
                self.generation += 1;
                true
            }
        }
    }

    /// The ad we hold for `origin`, if any.
    pub fn get(&self, origin: HostId) -> Option<&LinkStateAd> {
        self.entries.get(&origin)
    }

    /// All held ads, in ascending origin order (deterministic).
    pub fn entries(&self) -> impl Iterator<Item = (&HostId, &LinkStateAd)> {
        self.entries.iter()
    }

    /// Monotone change counter: bumped on every successful install.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct origins known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no ads have been installed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(origin: u32, seq: u64) -> LinkStateAd {
        LinkStateAd {
            origin: HostId(origin),
            seq,
            stamped_at: SimTime::ZERO,
            links: Vec::new(),
        }
    }

    #[test]
    fn newer_sequence_wins_and_bumps_generation() {
        let mut db = Lsdb::default();
        assert!(db.install(ad(1, 1)));
        assert_eq!(db.generation(), 1);
        // Duplicate and stale ads are rejected without a generation bump.
        assert!(!db.install(ad(1, 1)));
        assert!(!db.install(ad(1, 0)));
        assert_eq!(db.generation(), 1);
        assert!(db.install(ad(1, 2)));
        assert_eq!(db.generation(), 2);
        assert_eq!(db.get(HostId(1)).unwrap().seq, 2);
    }

    #[test]
    fn entries_iterate_in_origin_order() {
        let mut db = Lsdb::default();
        db.install(ad(3, 1));
        db.install(ad(0, 1));
        db.install(ad(2, 1));
        let origins: Vec<u32> = db.entries().map(|(h, _)| h.0).collect();
        assert_eq!(origins, vec![0, 2, 3]);
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
    }
}
