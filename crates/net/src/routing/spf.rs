//! Deterministic route computation over a link-state database.
//!
//! Two computations share the LSDB's adjacency view:
//!
//! - [`primary_routes`]: shortest-hop first-hop table by BFS, reproducing
//!   the determinism rules of the original build-time computation exactly
//!   (neighbour lists sorted `(peer, iface)`, first visit wins) — this is
//!   what datagrams and non-pinned traffic follow.
//! - [`k_paths`]: up to `k` loop-free alternate paths by a best-first
//!   search ordered by `(length, hop sequence, network sequence)` — the
//!   ISSUE's "path length, then lowest HostId sequence" tie-break — used by
//!   RMS establishment to walk admission-aware alternates.
//!
//! Topology (who is attached to what) comes from the LSDB; *availability*
//! (network down, host crashed) is read from the live state, modelling
//! instantaneous link-layer failure detection, while the QoS attributes
//! carried in the ads (headroom, delay, capacity) are only as fresh as the
//! last flood that reached the computing host.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use rms_core::hash::DetHashMap;

use super::lsdb::Lsdb;
use crate::ids::{HostId, NetworkId};
use crate::state::{NetState, Route};

/// Maximum number of alternate paths computed per destination.
pub const K_ALTERNATES: usize = 3;

/// Safety valve on the best-first search: total partial paths popped.
const EXPANSION_CAP: usize = 20_000;

/// Hop budget the frontier stores inline. Matches the default TTL, so the
/// best-first search below allocates nothing per expansion in the common
/// case; longer TTLs spill to a heap Vec (same inline-then-spill shape as
/// `WireMsg`'s segment list).
const INLINE_HOPS: usize = 16;

/// An id sequence (hops or networks) held inline up to [`INLINE_HOPS`].
/// Ordering is lexicographic over the raw ids — identical to the
/// `Vec<HostId>` / `Vec<NetworkId>` ordering the search was specified
/// with, so replacing the Vecs cannot change which paths are found.
#[derive(Clone, PartialEq, Eq)]
enum IdPath {
    Inline { len: u8, buf: [u32; INLINE_HOPS] },
    Spilled(Vec<u32>),
}

impl IdPath {
    const EMPTY: IdPath = IdPath::Inline {
        len: 0,
        buf: [0; INLINE_HOPS],
    };

    fn as_slice(&self) -> &[u32] {
        match self {
            IdPath::Inline { len, buf } => &buf[..*len as usize],
            IdPath::Spilled(v) => v,
        }
    }

    /// A copy of `self` with `id` appended; stays inline while it fits.
    fn pushed(&self, id: u32) -> IdPath {
        match self {
            IdPath::Inline { len, buf } if (*len as usize) < INLINE_HOPS => {
                let mut buf = *buf;
                buf[*len as usize] = id;
                IdPath::Inline { len: len + 1, buf }
            }
            _ => {
                let s = self.as_slice();
                let mut v = Vec::with_capacity(s.len() + 1);
                v.extend_from_slice(s);
                v.push(id);
                IdPath::Spilled(v)
            }
        }
    }
}

impl Ord for IdPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for IdPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A loop-free candidate path produced by [`k_paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct AltPath {
    /// Hops after the source, ending with the destination.
    pub hops: Vec<HostId>,
    /// `networks[i]` carries the packet to `hops[i]`; same length as `hops`.
    pub networks: Vec<NetworkId>,
    /// The smallest advertised deterministic admission headroom along the
    /// path, bytes per second (stale by up to one flood interval).
    pub min_headroom_bps: f64,
}

/// Per-network attachment lists derived from the LSDB. Origins iterate in
/// ascending order, so each list is ascending by host id.
fn attachment_map(lsdb: &Lsdb) -> BTreeMap<NetworkId, Vec<HostId>> {
    let mut map: BTreeMap<NetworkId, Vec<HostId>> = BTreeMap::new();
    for (origin, ad) in lsdb.entries() {
        for link in &ad.links {
            map.entry(link.network).or_default().push(*origin);
        }
    }
    map
}

/// Shortest-hop first-hop table from `src`, computed over `src`'s LSDB.
///
/// Determinism contract: identical to the original global BFS — neighbour
/// lists are `(peer, iface)`-sorted, ties resolve to the first visit, down
/// networks contribute no edges, and crashed hosts are reachable but never
/// expanded as transit.
pub fn primary_routes(state: &NetState, src: HostId) -> DetHashMap<HostId, Route> {
    let lsdb = &state.host(src).lsdb;
    let attached = attachment_map(lsdb);
    let n_hosts = state.hosts.len();
    // neighbours[h] = [(neighbour, iface index of h used to reach it)]
    let mut neighbours: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_hosts];
    for (origin, ad) in lsdb.entries() {
        let h = origin.0 as usize;
        if h >= n_hosts {
            continue;
        }
        for (idx, link) in ad.links.iter().enumerate() {
            if state.network(link.network).down {
                continue;
            }
            if let Some(peers) = attached.get(&link.network) {
                for peer in peers {
                    if peer.0 as usize != h {
                        neighbours[h].push((peer.0 as usize, idx));
                    }
                }
            }
        }
        // Deterministic exploration order.
        neighbours[h].sort_unstable();
    }
    let src = src.0 as usize;
    let mut first_hop: Vec<Option<(usize, usize)>> = vec![None; n_hosts]; // (next, iface)
    let mut visited = vec![false; n_hosts];
    let mut queue = VecDeque::new();
    visited[src] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // Crashed hosts do not forward (or originate): reachable as a
        // destination, but never expanded.
        if !state.hosts[u].up {
            continue;
        }
        for &(v, iface) in &neighbours[u] {
            if !visited[v] {
                visited[v] = true;
                first_hop[v] = if u == src {
                    Some((v, iface))
                } else {
                    first_hop[u]
                };
                queue.push_back(v);
            }
        }
    }
    first_hop
        .iter()
        .enumerate()
        .filter_map(|(dst, hop)| {
            hop.map(|(next, iface)| {
                (
                    HostId(dst as u32),
                    Route {
                        iface,
                        next_hop: HostId(next as u32),
                    },
                )
            })
        })
        .collect()
}

/// Up to `k` loop-free paths from `src` to `dst`, best-first in
/// `(length, hops, networks)` order so the result sequence is byte-stable
/// across runs. Returns an empty vector when `dst` is unreachable.
pub fn k_paths(state: &NetState, src: HostId, dst: HostId, k: usize) -> Vec<AltPath> {
    if src == dst || k == 0 {
        return Vec::new();
    }
    let lsdb = &state.host(src).lsdb;
    let attached = attachment_map(lsdb);
    let ttl = state.config.ttl as usize;
    // Min-heap on (len, hops, networks): BinaryHeap is a max-heap, so the
    // key is wrapped in `Reverse`. Paths are inline-array `IdPath`s, so a
    // frontier expansion allocates nothing until a path outgrows the TTL
    // default.
    type Frontier = (usize, IdPath, IdPath);
    let mut heap: BinaryHeap<Reverse<Frontier>> = BinaryHeap::new();
    heap.push(Reverse((0, IdPath::EMPTY, IdPath::EMPTY)));
    let mut visits: DetHashMap<HostId, usize> = DetHashMap::default();
    let mut out = Vec::new();
    let mut pops = 0usize;
    while let Some(Reverse((len, hops, networks))) = heap.pop() {
        pops += 1;
        if pops > EXPANSION_CAP {
            break;
        }
        let tail = hops.as_slice().last().map(|h| HostId(*h)).unwrap_or(src);
        if tail == dst {
            let hops = hops.as_slice().iter().map(|h| HostId(*h)).collect();
            let networks = networks.as_slice().iter().map(|n| NetworkId(*n)).collect();
            out.push(make_alt(lsdb, src, hops, networks));
            if out.len() >= k {
                break;
            }
            continue;
        }
        // Classic k-shortest pruning: expand each node at most k times.
        let seen = visits.entry(tail).or_insert(0);
        if *seen >= k {
            continue;
        }
        *seen += 1;
        if len >= ttl {
            continue;
        }
        // Crashed hosts can terminate a path but never transit one.
        if tail != src && !state.host(tail).up {
            continue;
        }
        let Some(ad) = lsdb.get(tail) else { continue };
        for link in &ad.links {
            if state.network(link.network).down {
                continue;
            }
            let Some(peers) = attached.get(&link.network) else {
                continue;
            };
            for &peer in peers {
                if peer == tail || peer == src || hops.as_slice().contains(&peer.0) {
                    continue;
                }
                if peer != dst && !state.host(peer).up {
                    continue;
                }
                heap.push(Reverse((
                    len + 1,
                    hops.pushed(peer.0),
                    networks.pushed(link.network.0),
                )));
            }
        }
    }
    out
}

fn make_alt(lsdb: &Lsdb, src: HostId, hops: Vec<HostId>, networks: Vec<NetworkId>) -> AltPath {
    let mut min_headroom = f64::INFINITY;
    let mut from = src;
    for (i, n) in networks.iter().enumerate() {
        if let Some(link) = lsdb
            .get(from)
            .and_then(|ad| ad.links.iter().find(|l| l.network == *n))
        {
            min_headroom = min_headroom.min(link.headroom_bps);
        }
        from = hops[i];
    }
    AltPath {
        hops,
        networks,
        min_headroom_bps: if min_headroom.is_finite() {
            min_headroom
        } else {
            0.0
        },
    }
}
