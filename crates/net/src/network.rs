//! Network objects (paper §3.1).
//!
//! "Each network type to which a DASH host is connected is represented by a
//! network object ... network objects provide host-to-host network RMS's.
//! They encapsulate network-specific protocols for RMS creation, deletion,
//! and transmission."
//!
//! A [`Network`] here is the abstract medium: its bandwidth, propagation
//! delay, loss/corruption behaviour, MTU, security capabilities
//! (trusted / broadcast / link encryption / hardware checksum), and the
//! derived [`ServiceTable`] advertising, for each reliability × security
//! combination, the performance limits it supports.

use dash_security::checksum::Algorithm;
use dash_security::suite::NetworkCapabilities;
use dash_sim::fault::GilbertElliott;
use dash_sim::rng::Rng;
use dash_sim::time::SimDuration;
use rms_core::compat::{PerfLimits, ServiceTable};
use rms_core::params::{BitErrorRate, Reliability, SecurityParams};

use crate::ids::{HostId, NetworkId};
use crate::packet::BASE_HEADER_BYTES;

/// Static description of a network, set by the topology builder.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Nominal transmission rate shared by all attached interfaces, bits/s.
    pub rate_bps: f64,
    /// One-way propagation delay between any two attached hosts.
    pub propagation: SimDuration,
    /// Largest packet (header + payload) the medium carries.
    pub mtu: u64,
    /// Whole-packet loss probability per traversal (congestion-independent).
    pub drop_prob: f64,
    /// Security-relevant capabilities (includes the raw bit error rate).
    pub caps: NetworkCapabilities,
    /// Strongest delay-bound kind this network supports
    /// (2 = deterministic, 1 = statistical, 0 = best-effort only).
    pub max_kind_strength: u8,
    /// Whether link-level ARQ is available to offer reliable combinations.
    pub supports_reliable: bool,
    /// Buffer bytes each attached interface devotes to reserved streams.
    pub iface_buffer_bytes: u64,
}

impl NetworkSpec {
    /// A 10 Mb/s Ethernet-like LAN: low delay, tiny loss, deterministic
    /// bounds supported, 1.5 KB MTU (§4.3 mentions "the 1.5KB Ethernet
    /// packet size limit").
    pub fn ethernet(name: impl Into<String>) -> Self {
        NetworkSpec {
            name: name.into(),
            rate_bps: 10e6,
            propagation: SimDuration::from_micros(50),
            mtu: 1536,
            drop_prob: 1e-6,
            caps: NetworkCapabilities {
                trusted: false,
                link_encryption: false,
                hardware_checksum: false,
                physical_broadcast: true,
                raw_ber: 1e-7,
            },
            max_kind_strength: 2,
            supports_reliable: true,
            iface_buffer_bytes: 256 * 1024,
        }
    }

    /// A long-haul, Internet-like path: high delay, more loss, statistical
    /// bounds at best.
    pub fn long_haul(name: impl Into<String>) -> Self {
        NetworkSpec {
            name: name.into(),
            rate_bps: 1.5e6, // T1-class
            propagation: SimDuration::from_millis(30),
            mtu: 1536,
            drop_prob: 1e-4,
            caps: NetworkCapabilities {
                trusted: false,
                link_encryption: false,
                hardware_checksum: false,
                physical_broadcast: false,
                raw_ber: 1e-6,
            },
            max_kind_strength: 1,
            supports_reliable: true,
            iface_buffer_bytes: 64 * 1024,
        }
    }

    /// A modern high-rate, low-error local fabric ("future high-performance
    /// large-scale communication networks", §1).
    pub fn fast_lan(name: impl Into<String>) -> Self {
        NetworkSpec {
            name: name.into(),
            rate_bps: 100e6,
            propagation: SimDuration::from_micros(10),
            mtu: 9_000,
            drop_prob: 1e-7,
            caps: NetworkCapabilities {
                trusted: false,
                link_encryption: false,
                hardware_checksum: true,
                physical_broadcast: true,
                raw_ber: 1e-10,
            },
            max_kind_strength: 2,
            supports_reliable: true,
            iface_buffer_bytes: 1024 * 1024,
        }
    }

    /// Seconds per payload byte at the nominal rate.
    pub fn per_byte_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(8.0 / self.rate_bps)
    }

    /// One ARQ round trip (retransmission granularity for reliable
    /// combinations): serialization of an MTU packet + 2× propagation.
    pub fn arq_rtt(&self) -> SimDuration {
        self.per_byte_delay()
            .saturating_mul(self.mtu)
            .saturating_add(self.propagation.saturating_mul(2))
    }

    /// The best (lowest) bit error rate the network can guarantee: the raw
    /// medium rate reduced by the strongest software checksum.
    pub fn best_error_rate(&self) -> BitErrorRate {
        let eff = self.caps.raw_ber * Algorithm::Crc32.undetected_error_probability();
        BitErrorRate::new(eff.clamp(0.0, 1.0)).expect("valid derived rate")
    }

    /// Probability a whole packet of `wire_bytes` is lost in one traversal
    /// (corruption beyond checksum repair is handled separately).
    ///
    /// `drop_prob` is calibrated to a [`REF_LOSS_BYTES`]-byte packet; loss
    /// is modelled as independent per byte, so larger packets are
    /// proportionally more exposed and smaller ones less.
    pub fn packet_loss_probability(&self, wire_bytes: u64) -> f64 {
        if self.drop_prob <= 0.0 {
            return 0.0;
        }
        if self.drop_prob >= 1.0 {
            return 1.0;
        }
        let scale = wire_bytes as f64 / REF_LOSS_BYTES as f64;
        1.0 - (1.0 - self.drop_prob).powf(scale)
    }

    /// Derive the §3.1 service table: performance limits per reliability ×
    /// security combination.
    pub fn service_table(&self) -> ServiceTable {
        let mut table = ServiceTable::new();
        let min_fixed = self
            .propagation
            .saturating_add(self.per_byte_delay().saturating_mul(BASE_HEADER_BYTES));
        let per_byte = self.per_byte_delay();
        let max_mms = self.mtu.saturating_sub(BASE_HEADER_BYTES + 32);
        let base = PerfLimits {
            min_fixed_delay: min_fixed,
            min_per_byte_delay: per_byte,
            max_capacity: self.iface_buffer_bytes,
            max_message_size: max_mms,
            min_error_rate: self.best_error_rate(),
            max_kind_strength: self.max_kind_strength,
        };
        for sec in SecurityParams::all() {
            table.support(Reliability::Unreliable, sec, base);
            if self.supports_reliable {
                // Reliable service uses link-level ARQ: worst-case delay
                // grows by the retry budget, and a lossy medium cannot give
                // a deterministic reliable bound.
                let mut rel = base;
                rel.min_fixed_delay = rel
                    .min_fixed_delay
                    .saturating_add(self.arq_rtt().saturating_mul(ARQ_RETRY_BUDGET as u64));
                rel.min_error_rate = BitErrorRate::ZERO;
                if self.drop_prob > 0.0 || self.caps.raw_ber > 0.0 {
                    rel.max_kind_strength = rel.max_kind_strength.min(1);
                }
                table.support(Reliability::Reliable, sec, rel);
            }
        }
        table
    }
}

/// Maximum ARQ retries assumed when budgeting reliable delay bounds.
pub const ARQ_RETRY_BUDGET: u32 = 4;

/// Reference packet size `NetworkSpec::drop_prob` is calibrated to: a
/// packet of exactly this many wire bytes is lost with probability
/// `drop_prob`.
pub const REF_LOSS_BYTES: u64 = 1024;

/// A live network instance: spec + attachments + wire behaviour + optional
/// wiretap used by the security tests.
#[derive(Debug)]
pub struct Network {
    /// This network's id.
    pub id: NetworkId,
    /// Static description.
    pub spec: NetworkSpec,
    /// Hosts attached to this network.
    pub attached: Vec<HostId>,
    /// True once [`crate::pipeline::fail_network`] brought it down.
    pub down: bool,
    /// When set (fault injection), the loss process is this Gilbert–Elliott
    /// burst channel instead of the spec's i.i.d. drop probability.
    pub burst: Option<GilbertElliott>,
    /// When enabled, every data payload traversing the network is recorded
    /// (what an eavesdropper would capture).
    pub wiretap: Option<Vec<bytes::Bytes>>,
}

/// The wire's verdict on one packet traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// Delivered intact after `delay`.
    Delivered {
        /// Extra delay beyond serialization (propagation + any ARQ retries).
        delay: SimDuration,
    },
    /// Delivered with corrupted contents (checksum may catch it).
    Corrupted {
        /// Extra delay beyond serialization.
        delay: SimDuration,
    },
    /// Lost entirely.
    Lost,
}

impl Network {
    /// Create an instance of `spec`.
    pub fn new(id: NetworkId, spec: NetworkSpec) -> Self {
        Network {
            id,
            spec,
            attached: Vec::new(),
            down: false,
            burst: None,
            wiretap: None,
        }
    }

    /// Sample what happens to a packet of `wire_bytes` bytes crossing this
    /// network. `reliable` selects link-level ARQ: losses/corruption turn
    /// into bounded extra delay instead (up to [`ARQ_RETRY_BUDGET`] tries,
    /// after which the packet is lost anyway). Takes `&mut self` because an
    /// active Gilbert–Elliott burst channel advances one step per attempt.
    pub fn sample_traversal(
        &mut self,
        rng: &mut Rng,
        wire_bytes: u64,
        reliable: bool,
    ) -> WireOutcome {
        let base = self.spec.propagation;
        if self.down {
            return WireOutcome::Lost;
        }
        let p_drop = self.spec.packet_loss_probability(wire_bytes);
        let p_corrupt = BitErrorRate::new(self.spec.caps.raw_ber.clamp(0.0, 1.0))
            .expect("valid raw ber")
            .message_error_probability(wire_bytes);
        let burst = &mut self.burst;
        let mut lost_once = |rng: &mut Rng| match burst {
            Some(ge) => ge.sample_loss(rng),
            None => rng.chance(p_drop),
        };
        if reliable {
            // Link-level ARQ: losses and corruption become bounded extra
            // delay. After the retry budget the packet is delivered anyway
            // (ARQ eventually succeeds); only a down network loses it.
            let mut delay = base;
            for _ in 0..ARQ_RETRY_BUDGET {
                let lost = lost_once(rng);
                let corrupted = rng.chance(p_corrupt);
                if !lost && !corrupted {
                    break;
                }
                delay = delay.saturating_add(self.spec.arq_rtt());
            }
            WireOutcome::Delivered { delay }
        } else {
            if lost_once(rng) {
                return WireOutcome::Lost;
            }
            if rng.chance(p_corrupt) {
                WireOutcome::Corrupted { delay: base }
            } else {
                WireOutcome::Delivered { delay: base }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::compat::{negotiate, RmsRequest};
    use rms_core::delay::DelayBound;
    use rms_core::params::RmsParams;

    #[test]
    fn per_byte_delay_matches_rate() {
        let spec = NetworkSpec::ethernet("e");
        // 10 Mb/s -> 0.8 us per byte.
        assert_eq!(spec.per_byte_delay(), SimDuration::from_nanos(800));
    }

    #[test]
    fn service_table_has_all_security_combos() {
        let spec = NetworkSpec::ethernet("e");
        let table = spec.service_table();
        for sec in SecurityParams::all() {
            assert!(table.limits(Reliability::Unreliable, sec).is_some());
            assert!(table.limits(Reliability::Reliable, sec).is_some());
        }
    }

    #[test]
    fn reliable_combo_has_higher_delay_floor_and_weaker_kind() {
        let spec = NetworkSpec::ethernet("e");
        let table = spec.service_table();
        let unrel = table
            .limits(Reliability::Unreliable, SecurityParams::NONE)
            .unwrap();
        let rel = table
            .limits(Reliability::Reliable, SecurityParams::NONE)
            .unwrap();
        assert!(rel.min_fixed_delay > unrel.min_fixed_delay);
        assert!(rel.max_kind_strength < unrel.max_kind_strength);
        assert_eq!(rel.min_error_rate, BitErrorRate::ZERO);
    }

    #[test]
    fn ethernet_supports_deterministic_bounds() {
        let spec = NetworkSpec::ethernet("e");
        let params = RmsParams::builder(10_000, 1_000)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(5),
                SimDuration::from_micros(1),
            ))
            .error_rate(spec.best_error_rate())
            .build()
            .unwrap();
        let got = negotiate(&spec.service_table(), &RmsRequest::exact(params)).unwrap();
        assert_eq!(got.capacity, 10_000);
    }

    #[test]
    fn long_haul_rejects_deterministic() {
        let spec = NetworkSpec::long_haul("wan");
        let params = RmsParams::builder(10_000, 1_000)
            .delay(DelayBound::deterministic(
                SimDuration::from_millis(100),
                SimDuration::from_micros(10),
            ))
            .error_rate(BitErrorRate::new(0.1).unwrap())
            .build()
            .unwrap();
        assert!(negotiate(&spec.service_table(), &RmsRequest::exact(params)).is_err());
    }

    #[test]
    fn wire_perfect_network_always_delivers() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.0;
        spec.caps.raw_ber = 0.0;
        let mut net = Network::new(NetworkId(0), spec);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            match net.sample_traversal(&mut rng, 1500, false) {
                WireOutcome::Delivered { delay } => {
                    assert_eq!(delay, net.spec.propagation)
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn wire_lossy_network_loses_roughly_at_rate() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.2;
        spec.caps.raw_ber = 0.0;
        let mut net = Network::new(NetworkId(0), spec);
        let mut rng = Rng::new(2);
        let n = 20_000;
        // drop_prob is calibrated at the reference packet size.
        let lost = (0..n)
            .filter(|_| {
                matches!(
                    net.sample_traversal(&mut rng, REF_LOSS_BYTES, false),
                    WireOutcome::Lost
                )
            })
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn loss_probability_scales_with_packet_size() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.1;
        let p_ref = spec.packet_loss_probability(REF_LOSS_BYTES);
        let p_small = spec.packet_loss_probability(REF_LOSS_BYTES / 4);
        let p_large = spec.packet_loss_probability(REF_LOSS_BYTES * 4);
        assert!((p_ref - 0.1).abs() < 1e-12, "reference calibration {p_ref}");
        assert!(
            p_small < p_ref && p_ref < p_large,
            "{p_small} {p_ref} {p_large}"
        );
        // Independent per-byte loss: quadrupling the size compounds the
        // survival probability, not the loss probability.
        assert!((1.0 - p_large - (1.0 - p_ref).powi(4)).abs() < 1e-12);
        // Degenerate cases stay clamped.
        spec.drop_prob = 0.0;
        assert_eq!(spec.packet_loss_probability(u64::MAX), 0.0);
        spec.drop_prob = 1.0;
        assert_eq!(spec.packet_loss_probability(1), 1.0);
    }

    #[test]
    fn burst_channel_overrides_iid_drops() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.0;
        spec.caps.raw_ber = 0.0;
        let mut net = Network::new(NetworkId(0), spec);
        // A channel pinned to the bad state losing everything.
        net.burst = Some(GilbertElliott::new(1.0, 0.0, 0.0, 1.0));
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            assert_eq!(
                net.sample_traversal(&mut rng, 512, false),
                WireOutcome::Lost
            );
        }
        // Clearing the burst restores the (perfect) i.i.d. process.
        net.burst = None;
        assert!(matches!(
            net.sample_traversal(&mut rng, 512, false),
            WireOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn reliable_traversal_converts_loss_to_delay() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.3;
        spec.caps.raw_ber = 0.0;
        let mut net = Network::new(NetworkId(0), spec);
        let mut rng = Rng::new(3);
        let mut delays = Vec::new();
        for _ in 0..5_000 {
            match net.sample_traversal(&mut rng, 1500, true) {
                WireOutcome::Delivered { delay } => delays.push(delay),
                WireOutcome::Lost => panic!("reliable wire never loses"),
                WireOutcome::Corrupted { .. } => panic!("reliable never corrupts"),
            }
        }
        // Some deliveries must have needed retries.
        assert!(delays.iter().any(|d| *d > net.spec.propagation));
        // And none exceeded the retry budget's delay.
        let max_extra = net.spec.arq_rtt().saturating_mul(ARQ_RETRY_BUDGET as u64);
        assert!(delays
            .iter()
            .all(|d| *d <= net.spec.propagation.saturating_add(max_extra)));
    }

    #[test]
    fn down_network_loses_everything() {
        let mut net = Network::new(NetworkId(0), NetworkSpec::ethernet("e"));
        net.down = true;
        let mut rng = Rng::new(4);
        assert_eq!(net.sample_traversal(&mut rng, 10, false), WireOutcome::Lost);
        assert_eq!(net.sample_traversal(&mut rng, 10, true), WireOutcome::Lost);
    }

    #[test]
    fn corruption_probability_scales_with_size() {
        let mut spec = NetworkSpec::ethernet("e");
        spec.drop_prob = 0.0;
        spec.caps.raw_ber = 1e-5;
        let mut net = Network::new(NetworkId(0), spec);
        let mut rng = Rng::new(5);
        let mut count = |bytes: u64, rng: &mut Rng| {
            (0..4_000)
                .filter(|_| {
                    matches!(
                        net.sample_traversal(rng, bytes, false),
                        WireOutcome::Corrupted { .. }
                    )
                })
                .count()
        };
        let small = count(64, &mut rng);
        let large = count(4096, &mut rng);
        assert!(large > small * 10, "small={small} large={large}");
    }
}
