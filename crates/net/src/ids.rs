//! Identifier newtypes for the network substrate.

use std::fmt;

/// A host attached to one or more networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// One abstract network (paper §3.1: "networks are abstract entities, and
/// need not be physically or logically disjoint").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetworkId(pub u32);

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// A network-level RMS, unique across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetRmsId(pub u64);

impl fmt::Display for NetRmsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nrms{}", self.0)
    }
}

/// Correlation token for asynchronous RMS creation requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CreateToken(pub u64);

impl fmt::Display for CreateToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(NetworkId(1).to_string(), "net1");
        assert_eq!(NetRmsId(9).to_string(), "nrms9");
        assert_eq!(CreateToken(2).to_string(), "tok2");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(HostId(1));
        s.insert(HostId(1));
        assert_eq!(s.len(), 1);
        assert!(NetRmsId(1) < NetRmsId(2));
    }
}
