//! # dash-net — the simulated network substrate and network-level RMS
//!
//! The network-dependent half of the DASH communication architecture
//! (paper Figure 1), built on [`dash_sim`]:
//!
//! - [`network`]: network objects with §3.1 properties (trusted, physical
//!   broadcast, link encryption, per-combination performance limits) and a
//!   stochastic wire (loss, bit errors, optional link-level ARQ).
//! - [`iface`]: interfaces whose transmit queues are ordered by RMS
//!   transmission deadline (§4.1) with a FIFO baseline mode.
//! - [`topology`]: hosts, gateways, internetworks, route seeding.
//! - [`routing`]: the distributed QoS routing subsystem — link-state
//!   dissemination, constrained k-alternate path selection, and
//!   admission-aware re-routing with event-driven reconvergence.
//! - [`rms`] + [`pipeline`]: the network-RMS protocol — path-wide parameter
//!   negotiation (§2.4), hop-by-hop deterministic/statistical admission
//!   control (§2.3), security mechanism selection (§2.5), sequenced
//!   delivery, failure notification, and teardown. Plus raw datagrams and
//!   source quench as the baseline primitive (§1, §4.4).
//! - [`state`]: the [`state::NetWorld`] trait upper layers implement.
//!
//! ## Example: a minimal world
//!
//! Upper layers embed [`state::NetState`] in their world type; the smallest
//! possible world just collects deliveries:
//!
//! ```
//! use dash_net::prelude::*;
//! use dash_sim::{Sim, SimTime};
//! use rms_core::{Message, RmsParams, RmsRequest};
//!
//! struct World {
//!     net: NetState,
//!     got: Vec<Message>,
//! }
//! impl NetWorld for World {
//!     fn net(&mut self) -> &mut NetState { &mut self.net }
//!     fn net_ref(&self) -> &NetState { &self.net }
//!     fn deliver_up(
//!         sim: &mut Sim<Self>, _host: HostId, _rms: NetRmsId,
//!         msg: Message, _info: rms_core::DeliveryInfo,
//!     ) {
//!         sim.state.got.push(msg);
//!     }
//!     fn rms_event(_sim: &mut Sim<Self>, _host: HostId, _event: NetRmsEvent) {}
//! }
//!
//! let (net, a, b) = dash_net::topology::two_hosts_ethernet();
//! let mut sim = Sim::new(World { net, got: Vec::new() });
//! let params = RmsParams::builder(64 * 1024, 1024).build().expect("valid");
//! let token = dash_net::pipeline::create_rms(&mut sim, a, b, &RmsRequest::exact(params))
//!     .expect("creatable");
//! # let _ = token;
//! sim.run(); // handshake completes; sends may follow
//! ```

pub mod fault;
pub mod ids;
pub mod iface;
pub mod network;
pub mod packet;
pub mod pipeline;
pub mod rms;
pub mod routing;
pub mod shard;
pub mod state;
pub mod topology;

/// Convenient re-exports for worlds built on this crate.
pub mod prelude {
    pub use crate::fault::{apply_fault, crash_host, restart_host, schedule_fault_plan};
    pub use crate::ids::{CreateToken, HostId, NetRmsId, NetworkId};
    pub use crate::network::NetworkSpec;
    pub use crate::pipeline::{
        close_rms, create_rms, create_rms_as_receiver, fail_network, restore_network,
        send_datagram, send_on_rms,
    };
    pub use crate::routing::{flood_from, AltPath, CandidatePath, LinkStateAd, Lsdb};
    pub use crate::state::{NetConfig, NetRmsEvent, NetState, NetWorld};
    pub use crate::topology::TopologyBuilder;
}

pub use ids::{CreateToken, HostId, NetRmsId, NetworkId};
pub use network::NetworkSpec;
pub use state::{NetConfig, NetRmsEvent, NetState, NetWorld};
pub use topology::TopologyBuilder;
