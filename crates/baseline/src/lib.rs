//! # dash-baseline — the protocols the paper argues against
//!
//! §1 of the paper describes existing systems as building reliable streams
//! and request/reply on top of "a simple abstraction such as unreliable,
//! insecure datagrams", and §4.4 contrasts RMS capacity with TCP's window
//! flow control and ICMP source quench. This crate supplies those
//! comparators over the same simulated network substrate:
//!
//! - [`tcp`]: a TCP-like byte stream (handshake, cumulative ACKs, sliding
//!   window, slow start + AIMD, RTO with backoff, source-quench reaction).
//! - Raw datagrams come straight from
//!   [`dash_net::pipeline::send_datagram`].
//!
//! The benchmark harness (`dash-bench`) races these against RKOM and RMS
//! streams in experiments `e7_rkom` and `e8_congestion`.

pub mod tcp;

pub use tcp::{TcpConfig, TcpEvent, TcpState, TcpWorld, TCP_PROTO};
