//! A TCP-like reliable byte stream over raw datagrams.
//!
//! The paper contrasts the RMS architecture with "traditional protocol
//! hierarchies" built on unreliable, insecure datagrams: TCP (RFC 793)
//! reliable byte streams with window flow control, and ICMP source quench
//! (RFC 792, RFC 896) as the ad-hoc congestion signal whose ineffectiveness
//! §4.4 calls out. This module implements that comparator:
//!
//! - three-way handshake, byte-sequenced segments with cumulative ACKs,
//! - sliding window = min(congestion window, receiver window),
//! - slow start + additive-increase/multiplicative-decrease,
//! - retransmission timeout with exponential backoff (go-back-N),
//! - source-quench reaction: collapse the congestion window to one segment.
//!
//! Deliberately *not* RMS-aware: it gets no deadline queueing (datagrams
//! carry `deadline = now`), no admission control, and no negotiated
//! parameters — exactly the §1 baseline.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use dash_net::ids::HostId;
use dash_net::pipeline as net;
use dash_net::state::NetWorld;
use dash_sim::engine::{Sim, TimerHandle};
use dash_sim::obs::ObsEvent;
use dash_sim::stats::{Counter, Histogram};
use dash_sim::time::{SimDuration, SimTime};
use rms_core::wire::WireMsg;

/// The datagram protocol number used by this TCP-like transport.
pub const TCP_PROTO: u16 = 6;

/// Configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment payload, bytes.
    pub mss: u64,
    /// Receiver window advertised, bytes.
    pub recv_window: u64,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Slow-start threshold, bytes.
    pub initial_ssthresh: u64,
    /// React to source quench by collapsing the congestion window
    /// (RFC 896 behaviour). Off = ignore quenches entirely.
    pub quench_reacts: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1024,
            recv_window: 64 * 1024,
            rto: SimDuration::from_millis(300),
            initial_ssthresh: 32 * 1024,
            quench_reacts: true,
        }
    }
}

const FLAG_SYN: u8 = 1;
const FLAG_ACK: u8 = 2;
const FLAG_FIN: u8 = 4;

#[derive(Debug, Clone)]
struct Segment {
    src_port: u16,
    dst_port: u16,
    seq: u64,
    ack: u64,
    flags: u8,
    window: u64,
    payload: Bytes,
}

/// Encode as a scatter-gather wire body: a 33-byte owned header chunk
/// plus the payload's shared view (never copied).
fn encode_segment(s: &Segment) -> WireMsg {
    let mut b = BytesMut::with_capacity(33);
    b.put_u16(s.src_port);
    b.put_u16(s.dst_port);
    b.put_u64(s.seq);
    b.put_u64(s.ack);
    b.put_u8(s.flags);
    b.put_u64(s.window);
    b.put_u32(s.payload.len() as u32);
    let mut out = WireMsg::from_bytes(b.freeze());
    out.push(s.payload.clone());
    out
}

fn decode_segment(wire: &WireMsg) -> Option<Segment> {
    let mut b = wire.cursor();
    let src_port = b.get_u16().ok()?;
    let dst_port = b.get_u16().ok()?;
    let seq = b.get_u64().ok()?;
    let ack = b.get_u64().ok()?;
    let flags = b.get_u8().ok()?;
    let window = b.get_u64().ok()?;
    let len = b.get_u32().ok()? as usize;
    Some(Segment {
        src_port,
        dst_port,
        seq,
        ack,
        flags,
        window,
        payload: b.take_bytes(len).ok()?,
    })
}

/// Connection lifecycle states (simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpStateKind {
    /// SYN sent, waiting for SYN|ACK.
    SynSent,
    /// Established.
    Established,
    /// Closed.
    Closed,
}

/// Per-connection statistics.
#[derive(Debug, Default)]
pub struct TcpStats {
    /// Payload bytes accepted from the application.
    pub bytes_queued: Counter,
    /// Payload bytes delivered in order to the peer application.
    pub bytes_delivered: Counter,
    /// Segments sent (first transmissions).
    pub segments_sent: Counter,
    /// Segments retransmitted.
    pub retransmitted: Counter,
    /// Source quenches processed.
    pub quenches: Counter,
    /// Round-trip samples, seconds.
    pub rtt: Histogram,
}

/// One endpoint of a TCP-like connection.
pub struct TcpConn {
    /// Connection id (local).
    pub id: u64,
    /// Remote host.
    pub peer: HostId,
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
    /// State.
    pub state: TcpStateKind,
    /// Statistics.
    pub stats: TcpStats,

    // Send side.
    send_buf: BytesMut,
    snd_una: u64, // oldest unacknowledged byte
    snd_nxt: u64, // next byte to send
    cwnd: u64,
    ssthresh: u64,
    peer_window: u64,
    rto_timer: Option<TimerHandle>,
    rto_backoff: u32,
    sent_at: HashMap<u64, SimTime>, // seq -> first-send time (for RTT)
    retx_copy: Vec<u8>,             // shadow of unacknowledged bytes

    // Receive side.
    rcv_nxt: u64,
    delivered: BytesMut,
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConn")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("cwnd", &self.cwnd)
            .finish()
    }
}

impl TcpConn {
    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window, bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Take the bytes delivered so far (application read).
    pub fn read(&mut self) -> Bytes {
        self.delivered.split().freeze()
    }

    /// Bytes queued but not yet sent.
    pub fn backlog(&self) -> u64 {
        self.send_buf.len() as u64
    }
}

/// Events surfaced to the application.
#[derive(Debug)]
pub enum TcpEvent {
    /// Our connect completed.
    Connected {
        /// The connection.
        conn: u64,
    },
    /// A peer connected to a listening port.
    Accepted {
        /// The connection.
        conn: u64,
        /// The peer.
        peer: HostId,
    },
    /// In-order payload arrived (read it with [`TcpConn::read`]).
    Data {
        /// The connection.
        conn: u64,
        /// Bytes newly available.
        bytes: u64,
    },
    /// The connection closed (FIN received or handshake failed).
    Closed {
        /// The connection.
        conn: u64,
    },
}

/// World contract: embed [`TcpState`] and receive [`TcpEvent`]s.
pub trait TcpWorld: NetWorld {
    /// The embedded TCP state.
    fn tcp(&mut self) -> &mut TcpState;
    /// Shared access.
    fn tcp_ref(&self) -> &TcpState;
    /// An event for the application.
    fn tcp_event(sim: &mut Sim<Self>, host: HostId, event: TcpEvent);
}

/// Per-host TCP state.
#[derive(Debug, Default)]
pub struct TcpHost {
    /// Connections by id.
    pub conns: HashMap<u64, TcpConn>,
    listeners: HashMap<u16, ()>,
    by_tuple: HashMap<(HostId, u16, u16), u64>, // (peer, local, remote) -> conn
    next_port: u16,
}

/// The TCP module's state.
#[derive(Debug)]
pub struct TcpState {
    /// Configuration.
    pub config: TcpConfig,
    hosts: Vec<TcpHost>,
    next_conn: u64,
}

impl TcpState {
    /// State for `n` hosts.
    pub fn new(n: usize) -> Self {
        TcpState {
            config: TcpConfig::default(),
            hosts: (0..n).map(|_| TcpHost::default()).collect(),
            next_conn: 1,
        }
    }

    /// A host's state.
    pub fn host(&self, id: HostId) -> &TcpHost {
        &self.hosts[id.0 as usize]
    }

    /// Mutable host state.
    pub fn host_mut(&mut self, id: HostId) -> &mut TcpHost {
        &mut self.hosts[id.0 as usize]
    }

    /// A connection, if it exists.
    pub fn conn(&self, host: HostId, conn: u64) -> Option<&TcpConn> {
        self.host(host).conns.get(&conn)
    }

    /// Mutable connection access.
    pub fn conn_mut(&mut self, host: HostId, conn: u64) -> Option<&mut TcpConn> {
        self.host_mut(host).conns.get_mut(&conn)
    }
}

fn new_conn(
    id: u64,
    peer: HostId,
    local_port: u16,
    remote_port: u16,
    state: TcpStateKind,
    config: &TcpConfig,
) -> TcpConn {
    TcpConn {
        id,
        peer,
        local_port,
        remote_port,
        state,
        stats: TcpStats::default(),
        send_buf: BytesMut::new(),
        snd_una: 0,
        snd_nxt: 0,
        cwnd: config.mss,
        ssthresh: config.initial_ssthresh,
        peer_window: config.recv_window,
        rto_timer: None,
        rto_backoff: 0,
        sent_at: HashMap::new(),
        retx_copy: Vec::new(),
        rcv_nxt: 0,
        delivered: BytesMut::new(),
    }
}

/// Listen for connections on `port` at `host`.
pub fn listen<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, port: u16) {
    sim.state.tcp().host_mut(host).listeners.insert(port, ());
}

/// Open a connection from `host` to `peer:port`. Completion surfaces as
/// [`TcpEvent::Connected`].
pub fn connect<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, port: u16) -> u64 {
    let (conn_id, local_port) = {
        let st = sim.state.tcp();
        let id = st.next_conn;
        st.next_conn += 1;
        let h = st.host_mut(host);
        h.next_port += 1;
        let local_port = 40_000 + h.next_port;
        let config = st.config.clone();
        let conn = new_conn(id, peer, local_port, port, TcpStateKind::SynSent, &config);
        st.host_mut(host).conns.insert(id, conn);
        st.host_mut(host)
            .by_tuple
            .insert((peer, local_port, port), id);
        (id, local_port)
    };
    send_segment(
        sim,
        host,
        peer,
        Segment {
            src_port: local_port,
            dst_port: port,
            seq: 0,
            ack: 0,
            flags: FLAG_SYN,
            window: sim.state.tcp_ref().config.recv_window,
            payload: Bytes::new(),
        },
    );
    arm_rto(sim, host, conn_id);
    conn_id
}

/// Queue bytes for transmission on an established connection.
pub fn send<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64, data: &[u8]) {
    {
        let Some(c) = sim.state.tcp().conn_mut(host, conn) else {
            return;
        };
        c.send_buf.extend_from_slice(data);
        c.stats.bytes_queued.add(data.len() as u64);
    }
    pump(sim, host, conn);
}

/// Close a connection (sends FIN).
pub fn close<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64) {
    let Some((peer, seg)) = ({
        let st = sim.state.tcp();
        st.conn_mut(host, conn).map(|c| {
            c.state = TcpStateKind::Closed;
            if let Some(t) = c.rto_timer.take() {
                t.cancel();
            }
            (
                c.peer,
                Segment {
                    src_port: c.local_port,
                    dst_port: c.remote_port,
                    seq: c.snd_nxt,
                    ack: c.rcv_nxt,
                    flags: FLAG_FIN | FLAG_ACK,
                    window: 0,
                    payload: Bytes::new(),
                },
            )
        })
    }) else {
        return;
    };
    send_segment(sim, host, peer, seg);
}

fn send_segment<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, peer: HostId, seg: Segment) {
    let bytes = encode_segment(&seg);
    net::send_datagram(sim, host, peer, TCP_PROTO, bytes);
}

fn pump<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64) {
    let now = sim.now();
    while let Some((peer, seg)) = {
        let config_mss = sim.state.tcp_ref().config.mss;
        let st = sim.state.tcp();
        let Some(c) = st.conn_mut(host, conn) else {
            return;
        };
        if c.state != TcpStateKind::Established || c.send_buf.is_empty() {
            None
        } else {
            let window = c.cwnd.min(c.peer_window);
            let in_flight = c.in_flight();
            if in_flight >= window {
                None
            } else {
                let budget = (window - in_flight).min(config_mss) as usize;
                let take = budget.min(c.send_buf.len());
                let payload = c.send_buf.split_to(take).freeze();
                let seq = c.snd_nxt;
                c.snd_nxt += take as u64;
                c.retx_copy.extend_from_slice(&payload);
                c.stats.segments_sent.incr();
                c.sent_at.insert(seq, now);
                Some((
                    c.peer,
                    Segment {
                        src_port: c.local_port,
                        dst_port: c.remote_port,
                        seq,
                        ack: c.rcv_nxt,
                        flags: FLAG_ACK,
                        window: 0,
                        payload,
                    },
                ))
            }
        }
    } {
        send_segment(sim, host, peer, seg);
    }
    ensure_rto(sim, host, conn);
}

fn ensure_rto<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64) {
    let needs = {
        let Some(c) = sim.state.tcp().conn_mut(host, conn) else {
            return;
        };
        (c.in_flight() > 0 || c.state == TcpStateKind::SynSent) && c.rto_timer.is_none()
    };
    if !needs {
        return;
    }
    let rto = {
        let st = sim.state.tcp_ref();
        let base = st.config.rto;
        st.conn(host, conn)
            .map(|c| base.saturating_mul(1u64 << c.rto_backoff.min(6)))
            .unwrap_or(base)
    };
    let handle = sim.schedule_timer(rto, move |sim| on_rto(sim, host, conn));
    if let Some(c) = sim.state.tcp().conn_mut(host, conn) {
        c.rto_timer = Some(handle);
    } else {
        handle.cancel();
    }
}

fn arm_rto<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64) {
    ensure_rto(sim, host, conn);
}

fn on_rto<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64) {
    let mss = sim.state.tcp_ref().config.mss;
    let action = {
        let Some(c) = sim.state.tcp().conn_mut(host, conn) else {
            return;
        };
        c.rto_timer = None;
        match c.state {
            TcpStateKind::SynSent => {
                c.rto_backoff = (c.rto_backoff + 1).min(8);
                if c.rto_backoff > 5 {
                    c.state = TcpStateKind::Closed;
                    Some(RtoAction::GiveUp)
                } else {
                    Some(RtoAction::Resyn {
                        peer: c.peer,
                        src: c.local_port,
                        dst: c.remote_port,
                    })
                }
            }
            TcpStateKind::Established if c.in_flight() > 0 => {
                // Timeout: multiplicative decrease + slow start restart
                // (RFC 793-era behaviour with congestion response).
                c.ssthresh = (c.cwnd / 2).max(mss);
                c.cwnd = mss;
                c.rto_backoff = (c.rto_backoff + 1).min(8);
                // Go-back-N: rewind to the oldest unacknowledged byte.
                let una = c.snd_una;
                let unsent = c.snd_nxt - una;
                // Prepend the in-flight bytes back onto the send buffer by
                // reconstructing from the retransmission copy we keep.
                Some(RtoAction::Rewind {
                    rewind_bytes: unsent,
                })
            }
            _ => None,
        }
    };
    match action {
        Some(RtoAction::Resyn { peer, src, dst }) => {
            let window = sim.state.tcp_ref().config.recv_window;
            send_segment(
                sim,
                host,
                peer,
                Segment {
                    src_port: src,
                    dst_port: dst,
                    seq: 0,
                    ack: 0,
                    flags: FLAG_SYN,
                    window,
                    payload: Bytes::new(),
                },
            );
            ensure_rto(sim, host, conn);
        }
        Some(RtoAction::Rewind { rewind_bytes }) => {
            // We keep no per-segment retransmission buffer; instead we
            // retransmit from the retained copies in `retx_buf`.
            rewind_and_retransmit(sim, host, conn, rewind_bytes);
            ensure_rto(sim, host, conn);
        }
        Some(RtoAction::GiveUp) => {
            W::tcp_event(sim, host, TcpEvent::Closed { conn });
        }
        None => {}
    }
}

enum RtoAction {
    Resyn { peer: HostId, src: u16, dst: u16 },
    Rewind { rewind_bytes: u64 },
    GiveUp,
}

/// Retransmission model: the sender keeps a shadow copy of unacknowledged
/// bytes in `retx` so go-back-N can resend them. To keep the structure
/// simple we stash them back at the *front* of the send buffer and reset
/// `snd_nxt`.
#[derive(Debug, Default)]
pub struct RetxShadow;

fn rewind_and_retransmit<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64, _bytes: u64) {
    // The shadow copy lives in `retx_buf` keyed per connection.
    let rewound = {
        let st = sim.state.tcp();
        let Some(c) = st.conn_mut(host, conn) else {
            return;
        };
        let in_flight = c.in_flight();
        if in_flight == 0 {
            None
        } else {
            // Reconstruct the unacked bytes from the retransmission copy.
            let copy = c
                .retx_copy
                .get(..in_flight as usize)
                .map(|s| s.to_vec())
                .unwrap_or_default();
            let mut rebuilt = BytesMut::with_capacity(copy.len() + c.send_buf.len());
            rebuilt.extend_from_slice(&copy);
            rebuilt.extend_from_slice(&c.send_buf);
            c.send_buf = rebuilt;
            c.retx_copy.clear();
            c.snd_nxt = c.snd_una;
            c.sent_at.clear();
            let segments = copy.len().div_ceil(1024) as u64;
            c.stats.retransmitted.add(segments);
            Some(segments)
        }
    };
    if let Some(segments) = rewound {
        let now = sim.now();
        let net = sim.state.net();
        if net.obs.is_active() {
            net.obs.emit(
                now,
                ObsEvent::TcpRetransmit {
                    host: host.0,
                    conn,
                    segments,
                },
            );
        }
        pump(sim, host, conn);
    }
}

/// Routing hook: the world's `deliver_datagram` forwards TCP datagrams here.
pub fn on_datagram<W: TcpWorld>(
    sim: &mut Sim<W>,
    host: HostId,
    src: HostId,
    payload: WireMsg,
    _sent_at: SimTime,
) {
    let Some(seg) = decode_segment(&payload) else {
        return;
    };
    let key = (src, seg.dst_port, seg.src_port);
    let existing = sim.state.tcp_ref().host(host).by_tuple.get(&key).copied();
    match existing {
        Some(conn) => on_segment(sim, host, conn, seg),
        None => {
            // SYN to a listener?
            if seg.flags & FLAG_SYN != 0
                && sim
                    .state
                    .tcp_ref()
                    .host(host)
                    .listeners
                    .contains_key(&seg.dst_port)
            {
                let conn_id = {
                    let st = sim.state.tcp();
                    let id = st.next_conn;
                    st.next_conn += 1;
                    let config = st.config.clone();
                    let mut c = new_conn(
                        id,
                        src,
                        seg.dst_port,
                        seg.src_port,
                        TcpStateKind::Established,
                        &config,
                    );
                    c.peer_window = seg.window;
                    st.host_mut(host).conns.insert(id, c);
                    st.host_mut(host).by_tuple.insert(key, id);
                    id
                };
                // SYN|ACK.
                let window = sim.state.tcp_ref().config.recv_window;
                send_segment(
                    sim,
                    host,
                    src,
                    Segment {
                        src_port: seg.dst_port,
                        dst_port: seg.src_port,
                        seq: 0,
                        ack: 0,
                        flags: FLAG_SYN | FLAG_ACK,
                        window,
                        payload: Bytes::new(),
                    },
                );
                W::tcp_event(
                    sim,
                    host,
                    TcpEvent::Accepted {
                        conn: conn_id,
                        peer: src,
                    },
                );
            }
        }
    }
}

fn on_segment<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, conn: u64, seg: Segment) {
    let now = sim.now();
    let mss = sim.state.tcp_ref().config.mss;
    let mut connected = false;
    let mut data_bytes = 0u64;
    let mut closed = false;
    let mut ack_to_send: Option<(HostId, Segment)> = None;
    {
        let st = sim.state.tcp();
        let Some(c) = st.conn_mut(host, conn) else {
            return;
        };
        if c.state == TcpStateKind::Closed {
            return;
        }
        // Handshake completion.
        if c.state == TcpStateKind::SynSent
            && seg.flags & FLAG_SYN != 0
            && seg.flags & FLAG_ACK != 0
        {
            c.state = TcpStateKind::Established;
            c.peer_window = seg.window;
            c.rto_backoff = 0;
            if let Some(t) = c.rto_timer.take() {
                t.cancel();
            }
            connected = true;
        }
        if seg.flags & FLAG_FIN != 0 {
            c.state = TcpStateKind::Closed;
            if let Some(t) = c.rto_timer.take() {
                t.cancel();
            }
            closed = true;
        }
        // ACK processing.
        if seg.flags & FLAG_ACK != 0 && seg.ack > c.snd_una {
            let acked = seg.ack - c.snd_una;
            // RTT sample from the oldest acked byte.
            if let Some(t0) = c.sent_at.remove(&c.snd_una) {
                c.stats.rtt.record(now.saturating_since(t0).as_secs_f64());
            }
            // Drop the acknowledged prefix of the retransmission copy.
            let drop = (acked as usize).min(c.retx_copy.len());
            c.retx_copy.drain(..drop);
            c.snd_una = seg.ack;
            c.rto_backoff = 0;
            if let Some(t) = c.rto_timer.take() {
                t.cancel();
            }
            // Congestion control: slow start then AIMD.
            if c.cwnd < c.ssthresh {
                c.cwnd += acked.min(mss);
            } else {
                c.cwnd += (mss * mss / c.cwnd).max(1);
            }
        }
        if seg.window > 0 {
            c.peer_window = seg.window;
        }
        // Data processing (in order only; out-of-order dropped, cumulative
        // ack re-sent).
        if !seg.payload.is_empty() {
            if seg.seq == c.rcv_nxt {
                c.rcv_nxt += seg.payload.len() as u64;
                c.delivered.extend_from_slice(&seg.payload);
                c.stats.bytes_delivered.add(seg.payload.len() as u64);
                data_bytes = seg.payload.len() as u64;
            }
            // Always ack what we have.
            ack_to_send = Some((
                c.peer,
                Segment {
                    src_port: c.local_port,
                    dst_port: c.remote_port,
                    seq: c.snd_nxt,
                    ack: c.rcv_nxt,
                    flags: FLAG_ACK,
                    window: sim_window(c),
                    payload: Bytes::new(),
                },
            ));
        }
    }
    if connected {
        W::tcp_event(sim, host, TcpEvent::Connected { conn });
    }
    if data_bytes > 0 {
        W::tcp_event(
            sim,
            host,
            TcpEvent::Data {
                conn,
                bytes: data_bytes,
            },
        );
    }
    if let Some((peer, ack)) = ack_to_send {
        send_segment(sim, host, peer, ack);
    }
    if closed {
        W::tcp_event(sim, host, TcpEvent::Closed { conn });
    } else {
        pump(sim, host, conn);
    }
}

fn sim_window(c: &TcpConn) -> u64 {
    // Advertised window: receive buffer minus undelivered backlog (the
    // application reads promptly in our workloads).
    let pending = c.delivered.len() as u64;
    (64 * 1024u64).saturating_sub(pending).max(1024)
}

/// Routing hook: the world's `deliver_quench` forwards here (§4.4: the
/// RFC 896 reaction).
pub fn on_quench<W: TcpWorld>(sim: &mut Sim<W>, host: HostId, dropped_dst: HostId) {
    let mss = sim.state.tcp_ref().config.mss;
    if !sim.state.tcp_ref().config.quench_reacts {
        return;
    }
    let conns: Vec<u64> = sim
        .state
        .tcp_ref()
        .host(host)
        .conns
        .iter()
        .filter(|(_, c)| c.peer == dropped_dst && c.state == TcpStateKind::Established)
        .map(|(id, _)| *id)
        .collect();
    for conn in conns {
        if let Some(c) = sim.state.tcp().conn_mut(host, conn) {
            c.stats.quenches.incr();
            c.ssthresh = (c.cwnd / 2).max(mss);
            c.cwnd = mss;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_round_trip() {
        let s = Segment {
            src_port: 40001,
            dst_port: 80,
            seq: 1000,
            ack: 500,
            flags: FLAG_ACK,
            window: 65535,
            payload: Bytes::from_static(b"abc"),
        };
        let d = decode_segment(&encode_segment(&s)).unwrap();
        assert_eq!(d.src_port, 40001);
        assert_eq!(d.seq, 1000);
        assert_eq!(d.payload.as_ref(), b"abc");
    }

    #[test]
    fn decode_rejects_short() {
        assert!(decode_segment(&WireMsg::from_bytes(Bytes::from_static(b"xx"))).is_none());
    }
}
